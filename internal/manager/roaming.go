package manager

import (
	"fmt"

	"gnf/internal/agent"
	"gnf/internal/clock"
)

// RegisterClient makes a client known to the manager before any agent
// reports it; the core layer calls this with addressing so deploys can
// install steering (the agent also needs AttachClient locally).
func (m *Manager) RegisterClient(client string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.clients[client]; !ok {
		m.clients[client] = &clientRec{
			chains:     make(map[string]ChainSpec),
			deployedOn: make(map[string]string),
		}
	}
}

// AttachChain deploys an NF chain for a client on its current station and
// remembers it for future roaming (the Manager API of §3: "allows single
// or chain of NFs to be associated with a subset of a selected client's
// traffic").
func (m *Manager) AttachChain(client string, spec ChainSpec) error {
	m.mu.Lock()
	rec, ok := m.clients[client]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	if _, dup := rec.chains[spec.Name]; dup {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrChainExists, spec.Name)
	}
	station := rec.station
	site := rec.offload
	mac, ip := rec.mac, rec.ip
	m.mu.Unlock()
	if station == "" {
		return fmt.Errorf("%w: %s", ErrNotAttached, client)
	}

	// Offloaded clients get new chains on their cloud site directly.
	target := station
	deploy := agent.DeploySpec{
		Chain:     spec.Name,
		Client:    client,
		Functions: spec.Functions,
		Enabled:   true,
	}
	if site != "" {
		target = site
		deploy.Remote = true
		deploy.Via = station
		deploy.ClientMAC, deploy.ClientIP = mac, ip
	}
	h, err := m.agentFor(target)
	if err != nil {
		return err
	}
	// For local deploys, client MAC/IP addressing is filled in by the
	// agent from its own client table (learned at association time).
	var res agent.DeployResult
	if err := h.call(agent.MethodDeploy, deploy, &res); err != nil {
		return err
	}
	m.mu.Lock()
	rec.chains[spec.Name] = spec
	rec.deployedOn[spec.Name] = target
	needSteer := site != "" && rec.steerOn != station
	if needSteer {
		rec.steerOn = station
	}
	m.mu.Unlock()
	// The first chain after a full detach re-arms the offload detour.
	if needSteer {
		edge, err := m.agentFor(station)
		if err != nil {
			return err
		}
		return edge.call(agent.MethodSteer, agent.SteerSpec{Client: client, Via: site}, nil)
	}
	return nil
}

// DetachChain removes a chain from a client everywhere it runs.
func (m *Manager) DetachChain(client, chainName string) error {
	m.mu.Lock()
	rec, ok := m.clients[client]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	_, exists := rec.chains[chainName]
	station := rec.deployedOn[chainName]
	delete(rec.chains, chainName)
	delete(rec.deployedOn, chainName)
	lastOffloaded := rec.offload != "" && len(rec.chains) == 0
	steerOn := rec.steerOn
	if lastOffloaded {
		rec.steerOn = ""
	}
	m.mu.Unlock()
	if !exists {
		return fmt.Errorf("%w: %s", ErrUnknownChain, chainName)
	}
	if station == "" {
		return nil
	}
	// A chain-less offloaded client must not keep its detour: a cloud
	// switch with no chain rules blackholes the return path.
	if lastOffloaded && steerOn != "" {
		if edge, err := m.agentFor(steerOn); err == nil {
			edge.call(agent.MethodUnsteer, agent.UnsteerSpec{Client: client}, nil)
		}
	}
	h, err := m.agentFor(station)
	if err != nil {
		return err
	}
	return h.call(agent.MethodRemove, agent.ChainRef{Chain: chainName}, nil)
}

// Chains lists a client's attached chain specs.
func (m *Manager) Chains(client string) []ChainSpec {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.clients[client]
	if !ok {
		return nil
	}
	out := make([]ChainSpec, 0, len(rec.chains))
	for _, s := range rec.chains {
		out = append(out, s)
	}
	return out
}

// applyClientEvent reacts to client (dis)connections pushed by agents:
// this is the roaming trigger. The placement-state update happens
// synchronously — before the agent's event call returns — so events apply
// in the order the handoffs really occurred; the chain reconciliation that
// a connection triggers runs on its own goroutine (it issues RPCs back to
// agents) and is tracked by the migration WaitGroup, so WaitIdle observes
// it. When a client appears on a new station and has chains deployed
// elsewhere, every chain migrates.
func (m *Manager) applyClientEvent(ev agent.ClientEvent) {
	m.mu.Lock()
	rec, ok := m.clients[ev.Client]
	if !ok {
		rec = &clientRec{chains: make(map[string]ChainSpec), deployedOn: make(map[string]string)}
		m.clients[ev.Client] = rec
	}
	if !ev.Connected {
		if rec.station == ev.Station {
			rec.station = ""
		}
		if rec.steerOn == ev.Station {
			rec.steerOn = "" // the detour rule died with the association
		}
		m.mu.Unlock()
		return
	}
	rec.station = ev.Station
	if !ev.MAC.IsZero() {
		rec.mac, rec.ip = ev.MAC, ev.IP
	}
	offloaded := rec.offload != ""
	m.mu.Unlock()
	m.migrationWG.Add(1)
	go func() {
		defer m.migrationWG.Done()
		if offloaded {
			m.reconcileOffloaded(ev.Client, rec)
			return
		}
		m.reconcileClient(ev.Client, rec)
	}()
}

// reconcileClient migrates the client's chains until every one of them
// runs on the client's current station. Migrations for one client are
// serialised on rec.migMu, and the target station is re-read after every
// migration — rapid successive handoffs therefore converge on the latest
// station instead of racing duplicate deployments.
func (m *Manager) reconcileClient(client string, rec *clientRec) {
	rec.migMu.Lock()
	defer rec.migMu.Unlock()
	for {
		m.mu.Lock()
		target := rec.station
		var spec ChainSpec
		from := ""
		found := false
		if target != "" {
			for name, s := range rec.chains {
				if at := rec.deployedOn[name]; at != "" && at != target {
					spec, from, found = s, at, true
					break
				}
			}
		}
		strategy := m.strategy
		m.mu.Unlock()
		if !found {
			return
		}
		rep := m.migrateChain(client, spec, from, target, strategy)
		m.mu.Lock()
		if rep.Err == "" {
			rec.deployedOn[spec.Name] = target
		}
		m.migrations = append(m.migrations, rep)
		m.mu.Unlock()
		if rep.Err != "" {
			return // avoid a hot loop on persistent failure
		}
	}
}

// MigrateChain moves one chain between stations on demand (the UI's manual
// migration button); roaming uses the same path.
func (m *Manager) MigrateChain(client, chainName, to string) (MigrationReport, error) {
	m.mu.Lock()
	rec, ok := m.clients[client]
	if !ok {
		m.mu.Unlock()
		return MigrationReport{}, fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	spec, ok := rec.chains[chainName]
	strategy := m.strategy
	m.mu.Unlock()
	if !ok {
		return MigrationReport{}, fmt.Errorf("%w: %s", ErrUnknownChain, chainName)
	}
	rec.migMu.Lock()
	defer rec.migMu.Unlock()
	m.mu.Lock()
	from := rec.deployedOn[chainName]
	m.mu.Unlock()
	rep := m.migrateChain(client, spec, from, to, strategy)
	m.mu.Lock()
	if rep.Err == "" {
		rec.deployedOn[chainName] = to
	}
	m.migrations = append(m.migrations, rep)
	m.mu.Unlock()
	if rep.Err != "" {
		return rep, fmt.Errorf("manager: migration failed: %s", rep.Err)
	}
	return rep, nil
}

// migrateChain implements §2's function roaming: "an equivalent function
// can be started on the newly assigned cell and removed from the previous
// cell" — plus optional state transfer. Downtime is measured on the
// manager clock from the instant the source stops serving (or, for cold
// migration, from the start of target deployment) until the target
// forwards traffic.
func (m *Manager) migrateChain(client string, spec ChainSpec, from, to string, strategy Strategy) MigrationReport {
	rep := MigrationReport{
		Client:   client,
		Chain:    spec.Name,
		From:     from,
		To:       to,
		Strategy: strategy,
	}
	fail := func(err error) MigrationReport {
		rep.Err = err.Error()
		return rep
	}
	target, err := m.agentFor(to)
	if err != nil {
		return fail(err)
	}
	var source *AgentHandle
	if from != "" {
		if source, err = m.agentFor(from); err != nil {
			source = nil // source station gone: degrade to cold deploy
			rep.Err = ""
		}
	}
	totalWatch := clock.NewStopwatch(m.clk)

	// Pre-stage images on the target while the source still serves.
	target.call(agent.MethodPrefetch, agent.PrefetchSpec{Images: nfImagesFor(spec)}, nil)

	deploy := agent.DeploySpec{
		Chain:     spec.Name,
		Client:    client,
		Functions: spec.Functions,
	}

	switch {
	case strategy == StrategyStateful && source != nil:
		// Deploy disabled, freeze source, move state, enable target.
		if err := target.call(agent.MethodDeploy, deploy, nil); err != nil {
			return fail(err)
		}
		downWatch := clock.NewStopwatch(m.clk)
		if err := source.call(agent.MethodDisable, agent.ChainRef{Chain: spec.Name}, nil); err != nil {
			return fail(err)
		}
		var ckpt agent.CheckpointResult
		if err := source.call(agent.MethodCheckpoint, agent.ChainRef{Chain: spec.Name}, &ckpt); err != nil {
			// Roll back: re-enable the source so the client is not left dark.
			source.call(agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil)
			target.call(agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(err)
		}
		rep.StateBytes = len(ckpt.State)
		if err := target.call(agent.MethodRestore, agent.RestoreSpec{Chain: spec.Name, State: ckpt.State}, nil); err != nil {
			source.call(agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil)
			target.call(agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(err)
		}
		if err := target.call(agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil); err != nil {
			return fail(err)
		}
		rep.Downtime = downWatch.Elapsed()
		source.call(agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)

	default:
		// Cold: equivalent function on the new cell, remove the old.
		deploy.Enabled = true
		downWatch := clock.NewStopwatch(m.clk)
		if err := target.call(agent.MethodDeploy, deploy, nil); err != nil {
			return fail(err)
		}
		rep.Downtime = downWatch.Elapsed()
		if source != nil {
			source.call(agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
		}
	}
	rep.Total = totalWatch.Elapsed()
	return rep
}

// WaitIdle blocks until in-flight roaming handlers complete (tests).
func (m *Manager) WaitIdle() { m.migrationWG.Wait() }
