package manager

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/topology"
	"gnf/internal/trace"
)

// RegisterClient makes a client known to the manager before any agent
// reports it; the core layer calls this with addressing so deploys can
// install steering (the agent also needs AttachClient locally).
func (m *Manager) RegisterClient(client string) {
	m.clients.getOrCreate(client)
}

// AttachChain deploys an NF chain for a client on its current station and
// remembers it for future roaming (the Manager API of §3: "allows single
// or chain of NFs to be associated with a subset of a selected client's
// traffic").
func (m *Manager) AttachChain(client string, spec ChainSpec) error {
	rec := m.clients.get(client)
	if rec == nil {
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	rec.mu.Lock()
	if existing, dup := rec.chains[spec.Name]; dup {
		rec.mu.Unlock()
		// Re-attaching the identical spec is a no-op, so declarative
		// reconciler retries (and operator double-submits) are safe; only a
		// *different* spec under the same name is a conflict.
		if reflect.DeepEqual(existing, spec) {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrChainExists, spec.Name)
	}
	station := rec.station
	site := rec.offload
	mac, ip := rec.mac, rec.ip
	rec.mu.Unlock()
	if station == "" {
		return fmt.Errorf("%w: %s", ErrNotAttached, client)
	}

	// Chains with placement affinities split into per-station segments.
	// Validation runs even for unsplit chains so a typoed affinity tag
	// fails loudly instead of silently collapsing to one segment.
	segs := SegmentsOf(spec)
	if err := validateSplit(spec, segs); err != nil {
		return err
	}
	if len(segs) > 1 {
		if site != "" {
			return fmt.Errorf("manager: cannot attach split chain %s: client %s is offloaded to %s", spec.Name, client, site)
		}
		return m.attachSegments(client, rec, spec, segs, station, mac, ip)
	}

	// Offloaded clients get new chains on their cloud site directly.
	target := station
	deploy := agent.DeploySpec{
		Chain:     spec.Name,
		Client:    client,
		Functions: spec.Functions,
		Enabled:   true,
	}
	if site != "" {
		target = site
		deploy.Remote = true
		deploy.Via = station
		deploy.ClientMAC, deploy.ClientIP = mac, ip
	}
	h, err := m.agentFor(target)
	if err != nil {
		return err
	}
	// For local deploys, client MAC/IP addressing is filled in by the
	// agent from its own client table (learned at association time).
	var res agent.DeployResult
	if err := h.call(agent.MethodDeploy, deploy, &res); err != nil {
		return err
	}
	rec.mu.Lock()
	rec.chains[spec.Name] = spec
	rec.deployedOn[spec.Name] = target
	needSteer := site != "" && rec.steerOn != station
	if needSteer {
		rec.steerOn = station
	}
	rec.mu.Unlock()
	m.journal.Append(trace.Event{
		Type: trace.EventAttach, Subject: spec.Name, Station: target,
		Detail: "client=" + client,
	})
	// The first chain after a full detach re-arms the offload detour.
	if needSteer {
		edge, err := m.agentFor(station)
		if err != nil {
			return err
		}
		return edge.steer(agent.SteerSpec{Client: client, Via: site})
	}
	return nil
}

// DetachChain removes a chain from a client everywhere it runs.
func (m *Manager) DetachChain(client, chainName string) error {
	rec := m.clients.get(client)
	if rec == nil {
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	rec.mu.Lock()
	_, exists := rec.chains[chainName]
	station := rec.deployedOn[chainName]
	delete(rec.chains, chainName)
	delete(rec.deployedOn, chainName)
	// A split chain's anchored segments live under "name#i" deployments;
	// collect them for removal alongside the head.
	type segDep struct{ name, at string }
	var segDeps []segDep
	for dep, at := range rec.deployedOn {
		if base, s := agent.ParseSegmentName(dep); base == chainName && s > 0 {
			segDeps = append(segDeps, segDep{dep, at})
			delete(rec.deployedOn, dep)
		}
	}
	lastOffloaded := rec.offload != "" && len(rec.chains) == 0
	steerOn := rec.steerOn
	if lastOffloaded {
		rec.steerOn = ""
	}
	rec.mu.Unlock()
	if !exists {
		return fmt.Errorf("%w: %s", ErrUnknownChain, chainName)
	}
	// A window must not outlive its chain: a later chain attached under
	// the same name would silently inherit it.
	m.Unschedule(client, chainName)
	m.journal.Append(trace.Event{
		Type: trace.EventDetach, Subject: chainName, Station: station,
		Detail: "client=" + client,
	})
	// A prewarmed standby must not outlive its chain.
	m.dropStandby(client, chainName)
	if station == "" {
		return nil
	}
	// A chain-less offloaded client must not keep its detour: a cloud
	// switch with no chain rules blackholes the return path.
	if lastOffloaded && steerOn != "" {
		if edge, err := m.agentFor(steerOn); err == nil {
			edge.call(agent.MethodUnsteer, agent.UnsteerSpec{Client: client}, nil)
		}
	}
	h, err := m.agentFor(station)
	if err != nil {
		return err
	}
	err = h.call(agent.MethodRemove, agent.ChainRef{Chain: chainName}, nil)
	// Anchored segments go best-effort after the head: with the head gone
	// the client's traffic no longer enters the split path, so a segment
	// whose station is unreachable merely lingers until rejoin GC.
	sort.Slice(segDeps, func(i, j int) bool { return segDeps[i].name < segDeps[j].name })
	for _, sd := range segDeps {
		if sh, serr := m.agentFor(sd.at); serr == nil {
			sh.call(agent.MethodRemove, agent.ChainRef{Chain: sd.name}, nil)
		}
	}
	return err
}

// Chains lists a client's attached chain specs.
func (m *Manager) Chains(client string) []ChainSpec {
	rec := m.clients.get(client)
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]ChainSpec, 0, len(rec.chains))
	for _, s := range rec.chains {
		out = append(out, s)
	}
	return out
}

// applyClientEvent reacts to client (dis)connections pushed by agents:
// this is the roaming trigger. The placement-state update and the queueing
// of the reconcile happen synchronously — before the agent's event call
// returns — so events apply in the order the handoffs really occurred and
// WaitIdle's drain barrier can never miss one. The chain reconciliation a
// connection triggers runs on the handoff pool (it issues RPCs back to
// agents); a handoff arriving while the client's previous reconcile is
// still queued supersedes it there (storm coalescing). When a client
// appears on a new station and has chains deployed elsewhere, every chain
// migrates.
func (m *Manager) applyClientEvent(ev agent.ClientEvent) {
	rec := m.clients.getOrCreate(ev.Client)
	if !ev.Connected {
		rec.mu.Lock()
		if rec.station == ev.Station {
			rec.station = ""
		}
		if rec.steerOn == ev.Station {
			rec.steerOn = "" // the detour rule died with the association
		}
		rec.mu.Unlock()
		m.journal.Append(trace.Event{
			Type: trace.EventClient, Subject: ev.Client, Station: ev.Station,
			Detail: "disconnect",
		})
		return
	}
	rec.mu.Lock()
	rec.station = ev.Station
	if !ev.MAC.IsZero() {
		rec.mac, rec.ip = ev.MAC, ev.IP
	}
	// Train the mobility predictor on the true station-to-station
	// transition. lastStation survives the break-before-make gap (station
	// is "" between the disconnect and this connect).
	prev := rec.lastStation
	rec.lastStation = ev.Station
	offloaded := rec.offload != ""
	rec.mu.Unlock()
	m.predictor.Observe(prev, ev.Station)
	// Root span of the handoff: every decision and RPC the reconciliation
	// makes — pre-copy rounds, deltas, the steering flip, the brownout
	// replay — nests under this one trace. Sampling is decided here.
	sp := m.tracer.StartSpan(trace.Context{}, "manager.handoff")
	sp.SetAttr("client", ev.Client)
	sp.SetAttr("station", ev.Station)
	tid := ""
	if sp.Context().Recording() {
		tid = sp.Context().TraceID
	}
	m.journal.Append(trace.Event{
		Type: trace.EventClient, Subject: ev.Client, Station: ev.Station,
		TraceID: tid, Detail: "connect",
	})
	m.pool.enqueue(&handoffTask{
		client:    ev.Client,
		rec:       rec,
		station:   ev.Station,
		offloaded: offloaded,
		sp:        sp,
		tctx:      sp.Context(),
	})
}

// reconcileClient migrates the client's chains until every one of them
// satisfies the client's current position. Migrations for one client are
// serialised on rec.migMu, and the target station is re-read after every
// migration — rapid successive handoffs therefore converge on the latest
// station instead of racing duplicate deployments.
//
// By default every chain follows the client to its station (the paper's
// roaming contract). With an RTT-aware placement policy and a topology
// graph installed, a chain carrying a MaxRTT budget may instead *stay* on
// its old station while that station still meets the budget from the
// client's new position; only when the topology makes the old station
// violate the budget is the chain re-placed, through the policy.
func (m *Manager) reconcileClient(client string, rec *clientRec, tctx trace.Context) {
	rec.migMu.Lock()
	defer rec.migMu.Unlock()
	// Chains the stay-rule accepted or a self-targeted re-place settled;
	// skipping them keeps the loop convergent. Reset on handoff: a new
	// client station re-evaluates every budget.
	settled := make(map[string]bool)
	settledAt := ""
	for {
		st := m.state()
		qos := st.topo != nil
		if _, aware := st.placement.(rttAware); !aware {
			qos = false
		}
		rec.mu.Lock()
		target := rec.station
		if target != settledAt {
			settled, settledAt = make(map[string]bool), target
		}
		var spec ChainSpec
		from := ""
		found := false
		split := false
		if target != "" {
			for name, s := range rec.chains {
				at := rec.deployedOn[name]
				if at == "" || at == target || settled[name] {
					continue
				}
				isSplit := len(SegmentsOf(s)) > 1
				// Split chains: the head strictly chases the client (the
				// stay-rule would strand the access leg); the anchored
				// segments never move on a handoff.
				if qos && !isSplit && withinBudget(st.topo, s, target, at) {
					continue // the old station still meets the chain's budget
				}
				spec, from, found, split = s, at, true, isSplit
				break
			}
		}
		rec.mu.Unlock()
		if !found {
			// Converged: every chain serves its client within policy. Stage
			// standbys for the predicted next handoff while still holding
			// the migration lock, so a prewarm never races a migration.
			m.maybePrewarm(client, rec)
			return
		}
		to := target
		if qos && spec.MaxRTT() > 0 && !split {
			// Budget violated: re-place through the policy. The client's
			// station is the usual answer (RTT 0), but a candidate that
			// fits the budget may win on the policy's own ranking.
			if picked, ok := m.place(PlacementHint{
				Client: client, Chain: spec.Name,
				Prefer: target, ClientAt: target,
				MaxRTT:       spec.MaxRTT(),
				ConfigHashes: chainConfigHashes(spec),
			}); ok {
				to = picked
			}
		}
		if to == from {
			settled[spec.Name] = true
			continue
		}
		rep := m.migrateChain(tctx, client, spec, from, to, st.strategy)
		rec.mu.Lock()
		if rep.Err == "" {
			rec.deployedOn[spec.Name] = to
		}
		rec.mu.Unlock()
		m.recordMigration(rep)
		if rep.Err != "" {
			return // avoid a hot loop on persistent failure
		}
	}
}

// withinBudget reports whether hosting the chain at `at` keeps its
// predicted RTT from the client's station within the chain's MaxRTT
// budget, over the given topology graph.
func withinBudget(topo *topology.Graph, spec ChainSpec, clientAt, at string) bool {
	budget := spec.MaxRTT()
	if budget <= 0 || topo == nil {
		return false
	}
	rtt, ok := topo.RTT(topology.StationID(clientAt), topology.StationID(at))
	return ok && rtt <= budget
}

// ChainSettled reports whether a chain deployed at `at` is in its settled
// placement for a client at `clientAt`: co-located with the client, or —
// under an RTT-aware placement policy — lagging behind within the chain's
// QoS budget (the same stay-rule roaming applies). The reconciler uses
// this to tell drifted chains (orphans, failed migrations) from chains
// that are legitimately elsewhere.
func (m *Manager) ChainSettled(spec ChainSpec, clientAt, at string) bool {
	if at == "" || clientAt == "" {
		return false
	}
	if at == clientAt {
		return true
	}
	// A split chain's head strictly follows the client — the QoS stay-rule
	// below never applies to it.
	if len(SegmentsOf(spec)) > 1 {
		return false
	}
	st := m.state()
	if _, ok := st.placement.(rttAware); !ok {
		return false
	}
	return withinBudget(st.topo, spec, clientAt, at)
}

// MigrateChain moves one chain between stations on demand (the UI's manual
// migration button); roaming uses the same path.
func (m *Manager) MigrateChain(client, chainName, to string) (MigrationReport, error) {
	rec := m.clients.get(client)
	if rec == nil {
		return MigrationReport{}, fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	rec.mu.Lock()
	spec, ok := rec.chains[chainName]
	rec.mu.Unlock()
	if !ok {
		return MigrationReport{}, fmt.Errorf("%w: %s", ErrUnknownChain, chainName)
	}
	strategy := m.state().strategy
	rec.migMu.Lock()
	defer rec.migMu.Unlock()
	rec.mu.Lock()
	from := rec.deployedOn[chainName]
	rec.mu.Unlock()
	sp := m.tracer.StartSpan(trace.Context{}, "manager.migrate_request")
	sp.SetAttr("client", client)
	rep := m.migrateChain(sp.Context(), client, spec, from, to, strategy)
	sp.End(nil)
	rec.mu.Lock()
	if rep.Err == "" {
		rec.deployedOn[chainName] = to
	}
	rec.mu.Unlock()
	m.recordMigration(rep)
	if rep.Err != "" {
		return rep, fmt.Errorf("manager: migration failed: %s", rep.Err)
	}
	return rep, nil
}

// Pre-copy tuning: rounds stop as soon as a delta underruns the
// convergence threshold (the residual the freeze must ship is then at most
// that small) or when the round budget exhausts — a chain whose state
// churns faster than the pipeline drains never converges, and capping the
// rounds bounds the total transfer at maxRounds full-state equivalents.
const (
	precopyMaxRounds      = 8
	precopyConvergedBytes = 2048
)

// prewarmConfidence is the minimum Markov transition probability before
// the manager stages a standby at the predicted next station.
const prewarmConfidence = 0.5

// migrateChain implements §2's function roaming: "an equivalent function
// can be started on the newly assigned cell and removed from the previous
// cell" — plus optional state transfer. Downtime is measured on the
// manager clock as the actual dark window: the span during which no chain
// instance could serve the client's traffic. For live migration that is
// freeze -> activate; for stop-and-copy it is freeze -> enable; for cold
// migration with a live source it is zero (the target deploys enabled
// while the old instance still serves — make-before-break), and only a
// dead source charges the target's deploy time.
func (m *Manager) migrateChain(tctx trace.Context, client string, spec ChainSpec, from, to string, strategy Strategy) MigrationReport {
	rep := MigrationReport{
		Client:   client,
		Chain:    spec.Name,
		From:     from,
		To:       to,
		Strategy: strategy,
	}
	// The migration decision span: per-step RPC spans (pre-copy rounds,
	// delta syncs, the activate) nest under it on both sides of the wire.
	sp := m.tracer.Child(tctx, "manager.migrate")
	sp.SetAttr("chain", spec.Name)
	sp.SetAttr("from", from)
	sp.SetAttr("to", to)
	sp.SetAttr("strategy", string(strategy))
	tctx = sp.Context()
	if tctx.Recording() {
		rep.TraceID = tctx.TraceID
	}
	defer func() {
		if rep.Err != "" {
			sp.End(errors.New(rep.Err))
		} else {
			sp.End(nil)
		}
	}()
	fail := func(err error) MigrationReport {
		rep.Err = err.Error()
		return rep
	}
	target, err := m.agentFor(to)
	if err != nil {
		return fail(err)
	}
	var source *AgentHandle
	if from != "" {
		if source, err = m.agentFor(from); err != nil {
			source = nil // source station gone: degrade to cold deploy
			rep.Err = ""
		}
	}
	// A standby staged anywhere but a live migration's target is stale:
	// tear it down first — left alone it would collide with the deploy
	// (same chain name) or linger as an orphan after the prediction missed.
	if st, ok := m.standbyStation(client, spec.Name); ok && !(strategy == StrategyLive && st == to) {
		m.dropStandby(client, spec.Name)
	}
	totalWatch := clock.NewStopwatch(m.clk)

	// Stateful migrations overlap the whole target-side prepare
	// (Prefetch+Deploy) against the source-side freeze+checkpoint inside
	// the strategy branch; every other strategy pre-stages images here,
	// while the source still serves.
	overlapped := strategy == StrategyStateful && source != nil
	if !overlapped {
		target.callT(tctx, agent.MethodPrefetch, agent.PrefetchSpec{Images: nfImagesFor(spec)}, nil)
	}

	deploy := agent.DeploySpec{
		Chain:     spec.Name,
		Client:    client,
		Functions: spec.Functions,
	}

	// Split chains migrate only their head segment: the deploy ships the
	// head's functions alone (the bytes the migration moves shrink to the
	// client-near state), points its next leg at the anchored segment-1
	// station, and the downstream splice happens after the cutover.
	segs := SegmentsOf(spec)
	seg1At := ""
	if len(segs) > 1 {
		deploy.Functions = segs[0].Functions
		deploy.SegIndex, deploy.SegCount = 0, len(segs)
		if rec := m.clients.get(client); rec != nil {
			rec.mu.Lock()
			seg1At = rec.deployedOn[agent.SegmentDeployName(spec.Name, 1)]
			deploy.ClientMAC, deploy.ClientIP = rec.mac, rec.ip
			rec.mu.Unlock()
		}
		deploy.NextVia = seg1At
		if err := m.ensureTunnel(to, seg1At); err != nil {
			return fail(err)
		}
	}

	switch {
	case strategy == StrategyLive && source != nil:
		m.liveMigrate(tctx, &rep, source, target, deploy)

	case strategy == StrategyLive && m.consumeStandby(client, spec.Name, to):
		// The source station is gone, so no state can ship — but the warm
		// standby at the target already holds the last synced snapshot,
		// which beats the cold restart: activate it. (This is the disaster
		// case prewarm helps most: the only surviving copy of the chain's
		// state is the one prediction staged.)
		downWatch := clock.NewStopwatch(m.clk)
		var act agent.ActivateResult
		if err := target.callT(tctx, agent.MethodActivate, agent.ChainRef{Chain: spec.Name}, &act); err != nil {
			target.callT(tctx, agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(err)
		}
		rep.Downtime = downWatch.Elapsed()
		rep.Prewarmed = true
		rep.ReplayedFrames = act.Replayed

	case overlapped:
		// Stop-and-copy: the target-side Prefetch+Deploy (disabled) runs
		// concurrently with the source-side freeze and checkpoint — the
		// deploy does not depend on source state, so serialising them only
		// stretched the migration. The join below reconciles every failure
		// combination; the transfer itself still sits in the dark window.
		deployErr := make(chan error, 1)
		go func() {
			target.callT(tctx, agent.MethodPrefetch, agent.PrefetchSpec{Images: nfImagesFor(spec)}, nil)
			deployErr <- target.callT(tctx, agent.MethodDeploy, deploy, nil)
		}()
		downWatch := clock.NewStopwatch(m.clk)
		disErr := source.callT(tctx, agent.MethodDisable, agent.ChainRef{Chain: spec.Name}, nil)
		var ckpt agent.CheckpointResult
		var ckptErr error
		if disErr == nil {
			ckptErr = source.callT(tctx, agent.MethodCheckpoint, agent.ChainRef{Chain: spec.Name}, &ckpt)
		}
		dErr := <-deployErr
		switch {
		case dErr != nil:
			// Target never deployed; re-enable the source if we froze it.
			if disErr == nil {
				source.callT(tctx, agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil)
			}
			return fail(dErr)
		case disErr != nil:
			// The source never froze (still serving), but the target deploy
			// succeeded: remove the disabled target copy, or it leaks as an
			// orphaned deployment the audit flags.
			target.callT(tctx, agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(disErr)
		case ckptErr != nil:
			// Roll back: re-enable the source so the client is not left dark.
			source.callT(tctx, agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil)
			target.callT(tctx, agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(ckptErr)
		}
		rep.StateBytes = len(ckpt.State)
		if err := target.callT(tctx, agent.MethodRestore, agent.RestoreSpec{Chain: spec.Name, State: ckpt.State}, nil); err != nil {
			source.callT(tctx, agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil)
			target.callT(tctx, agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(err)
		}
		if err := target.callT(tctx, agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil); err != nil {
			// Same rollback as the Checkpoint/Restore branches: without it a
			// failed enable left the source disabled and the half-deployed
			// target in place — the client dark on both ends.
			source.callT(tctx, agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil)
			target.callT(tctx, agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(err)
		}
		rep.Downtime = downWatch.Elapsed()
		source.callT(tctx, agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)

	case source == nil:
		// Cold deploy with no surviving source: the client is dark until
		// the fresh instance forwards.
		deploy.Enabled = true
		downWatch := clock.NewStopwatch(m.clk)
		if err := target.callT(tctx, agent.MethodDeploy, deploy, nil); err != nil {
			return fail(err)
		}
		rep.Downtime = downWatch.Elapsed()

	default:
		// Cold with a live source is make-before-break: the old chain
		// keeps serving until MethodRemove and the target deploys enabled
		// before that, so the dark window is zero. (State is still lost —
		// that is cold migration's trade.)
		deploy.Enabled = true
		if err := target.callT(tctx, agent.MethodDeploy, deploy, nil); err != nil {
			return fail(err)
		}
		source.callT(tctx, agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
		rep.Downtime = 0
	}
	// Re-splice the downstream leg of a split chain: the anchored
	// segment's previous-leg rules chase the head to its new station. A
	// failed splice is a failed migration — the return path would ride a
	// tunnel toward the station the head just left.
	if len(segs) > 1 && seg1At != "" {
		h, err := m.agentFor(seg1At)
		if err != nil {
			return fail(err)
		}
		pv := to
		if err := h.callT(tctx, agent.MethodRetarget, agent.RetargetSpec{
			Chain: agent.SegmentDeployName(spec.Name, 1), PrevVia: &pv,
		}, nil); err != nil {
			return fail(err)
		}
	}
	rep.Total = totalWatch.Elapsed()
	// If the source station re-registered while this migration ran (a
	// kill/restart inside one storm window), the cleanup above went to a
	// dead handle — or, with source == nil, never ran — and the station's
	// rejoin GC may have announced the stale copy before this migration's
	// placement update landed. Reap it on the fresh connection: the chain
	// now lives on the target.
	if from != "" && from != to {
		if h, err := m.agentFor(from); err == nil && h != source {
			h.callT(tctx, agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
		}
	}
	return rep
}

// liveMigrate runs the pre-copy pipeline of StrategyLive: iterative delta
// rounds sync the target while the source still serves; the freeze window
// ships only the residual delta and activates the target, which replays
// its brownout buffer. The target deploy overlaps the first pre-copy round
// (neither depends on the other; only SyncDelta needs the deployed chain).
// A prewarmed standby at the target skips the deploy and resumes the
// source's existing pre-copy session. Every failure path re-enables the
// source and removes the target, so the client is never left dark by a
// broken migration.
func (m *Manager) liveMigrate(tctx trace.Context, rep *MigrationReport, source, target *AgentHandle, deploy agent.DeploySpec) {
	chain := agent.ChainRef{Chain: deploy.Chain}
	prewarmed := m.consumeStandby(rep.Client, deploy.Chain, rep.To)
	rep.Prewarmed = prewarmed
	var deployCh chan error
	if !prewarmed {
		deployCh = make(chan error, 1)
		go func() { deployCh <- target.callT(tctx, agent.MethodDeploy, deploy, nil) }()
	}
	// joinDeploy must resolve before the first SyncDelta lands on the
	// target and before any rollback removes it.
	joinDeploy := func() error {
		if deployCh == nil {
			return nil
		}
		err := <-deployCh
		deployCh = nil
		return err
	}
	rollback := func(err error) {
		joinDeploy()
		source.callT(tctx, agent.MethodEnable, chain, nil)
		target.callT(tctx, agent.MethodRemove, chain, nil)
		rep.Err = err.Error()
	}
	// Iterative pre-copy while the source serves. A prewarmed standby
	// already holds a synced snapshot, so its session resumes; otherwise
	// the first round restarts the session and ships the full state.
	for rep.Rounds < precopyMaxRounds {
		var pr agent.PreCopyResult
		req := agent.PreCopySpec{Chain: deploy.Chain, Restart: !prewarmed && rep.Rounds == 0}
		if err := source.callT(tctx, agent.MethodPreCopy, req, &pr); err != nil {
			rollback(err)
			return
		}
		if err := joinDeploy(); err != nil {
			// The deploy failed while the first round ran: the source never
			// stopped serving and nothing landed on the target, so there is
			// nothing to roll back — the stale pre-copy session restarts on
			// the next attempt.
			rep.Err = err.Error()
			return
		}
		if err := target.callT(tctx, agent.MethodSyncDelta, agent.SyncDeltaSpec{Chain: deploy.Chain, State: pr.State}, nil); err != nil {
			rollback(err)
			return
		}
		rep.Rounds++
		rep.PrecopyBytes += len(pr.State)
		if len(pr.State) <= precopyConvergedBytes {
			break
		}
	}
	// Freeze: only the residual delta rides inside the dark window, so
	// downtime no longer depends on total state size. The brownout flag
	// parks source-side stragglers instead of counting them as drops.
	downWatch := clock.NewStopwatch(m.clk)
	if err := source.callT(tctx, agent.MethodDisable, agent.ChainRef{Chain: deploy.Chain, Brownout: true}, nil); err != nil {
		rollback(err)
		return
	}
	var residual agent.PreCopyResult
	if err := source.callT(tctx, agent.MethodPreCopy, agent.PreCopySpec{Chain: deploy.Chain}, &residual); err != nil {
		rollback(err)
		return
	}
	if err := target.callT(tctx, agent.MethodSyncDelta, agent.SyncDeltaSpec{Chain: deploy.Chain, State: residual.State}, nil); err != nil {
		rollback(err)
		return
	}
	var act agent.ActivateResult
	if err := target.callT(tctx, agent.MethodActivate, chain, &act); err != nil {
		rollback(err)
		return
	}
	rep.Downtime = downWatch.Elapsed()
	rep.ResidualBytes = len(residual.State)
	rep.StateBytes = rep.PrecopyBytes + rep.ResidualBytes
	rep.ReplayedFrames = act.Replayed
	source.callT(tctx, agent.MethodRemove, chain, nil)
}

// standbyStation reports where a prewarmed standby for client/chain is
// staged, if any.
func (m *Manager) standbyStation(client, chain string) (string, bool) {
	rec := m.clients.get(client)
	if rec == nil {
		return "", false
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.standby == nil {
		return "", false
	}
	st, ok := rec.standby[chain]
	return st, ok
}

// consumeStandby claims the standby of client/chain if it is staged at
// station `to`, deleting the record: the standby deployment becomes the
// migration's target.
func (m *Manager) consumeStandby(client, chain, to string) bool {
	rec := m.clients.get(client)
	if rec == nil {
		return false
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.standby == nil || rec.standby[chain] != to {
		return false
	}
	delete(rec.standby, chain)
	return true
}

// dropStandby forgets client/chain's standby record and tears the staged
// deployment down (best effort — a vanished station simply loses it).
func (m *Manager) dropStandby(client, chain string) {
	rec := m.clients.get(client)
	if rec == nil {
		return
	}
	var station string
	rec.mu.Lock()
	if rec.standby != nil {
		station = rec.standby[chain]
		delete(rec.standby, chain)
	}
	rec.mu.Unlock()
	if station == "" {
		return
	}
	if h, err := m.agentFor(station); err == nil {
		h.call(agent.MethodRemove, agent.ChainRef{Chain: chain}, nil)
	}
}

// maybePrewarm stages disabled, state-synced standby chains at the station
// the mobility predictor expects the client to roam to next, so the
// eventual handoff skips the deploy and the bulk state transfer entirely.
// Callers hold rec.migMu, serialising prewarms against migrations; every
// step is best effort — a failed prewarm costs nothing but the miss.
func (m *Manager) maybePrewarm(client string, rec *clientRec) {
	st := m.state()
	rec.mu.Lock()
	enabled := st.prewarm && st.strategy == StrategyLive && rec.offload == ""
	station := rec.station
	chains := make(map[string]ChainSpec)
	for name, spec := range rec.chains {
		// Split chains are excluded from prewarming: a standby head would
		// need its downstream leg staged too, and the handoff only moves
		// the head's (small) state anyway.
		if rec.deployedOn[name] == station && len(SegmentsOf(spec)) <= 1 {
			chains[name] = spec
		}
	}
	standbys := make(map[string]string, len(rec.standby))
	for name, st := range rec.standby {
		standbys[name] = st
	}
	rec.mu.Unlock()
	if !enabled || station == "" || len(chains) == 0 {
		return
	}
	next, prob, ok := m.predictor.Predict(station)
	if !ok || prob < prewarmConfidence || next == station {
		return
	}
	target, err := m.agentFor(next)
	if err != nil {
		return
	}
	source, err := m.agentFor(station)
	if err != nil {
		return
	}
	for name, spec := range chains {
		if standbys[name] == next {
			continue // already staged at the predicted station
		}
		if standbys[name] != "" {
			m.dropStandby(client, name) // prediction changed: restage
		}
		target.call(agent.MethodPrefetch, agent.PrefetchSpec{Images: nfImagesFor(spec)}, nil)
		deploy := agent.DeploySpec{
			Chain:     name,
			Client:    client,
			Functions: spec.Functions,
			Standby:   true,
		}
		if err := target.call(agent.MethodDeploy, deploy, nil); err != nil {
			continue
		}
		// Initial sync: a fresh session's full state lands on the standby;
		// the migration's rounds later ship only what changed since.
		var pr agent.PreCopyResult
		if err := source.call(agent.MethodPreCopy, agent.PreCopySpec{Chain: name, Restart: true}, &pr); err != nil {
			target.call(agent.MethodRemove, agent.ChainRef{Chain: name}, nil)
			continue
		}
		if err := target.call(agent.MethodSyncDelta, agent.SyncDeltaSpec{Chain: name, State: pr.State}, nil); err != nil {
			target.call(agent.MethodRemove, agent.ChainRef{Chain: name}, nil)
			continue
		}
		rec.mu.Lock()
		// DetachChain does not hold the migration lock, so the chain may
		// have been detached while we staged: its dropStandby saw no record
		// yet, making this standby ours to reap — recording it would leak
		// an orphaned deployment forever.
		_, alive := rec.chains[name]
		if alive {
			if rec.standby == nil {
				rec.standby = make(map[string]string)
			}
			rec.standby[name] = next
		}
		rec.mu.Unlock()
		if !alive {
			target.call(agent.MethodRemove, agent.ChainRef{Chain: name}, nil)
		}
	}
}

// WaitIdle blocks until queued and in-flight roaming work completes
// (tests). The handoff pool's drain barrier replaces the old WaitGroup —
// handoffs are enqueued synchronously inside applyClientEvent, so the
// barrier can never race a concurrent Add the way WaitGroup.Wait did.
func (m *Manager) WaitIdle() { m.pool.waitIdle() }
