// Package manager implements the GNF Manager of §3: it exposes APIs to
// associate single NFs or chains with a subset of a client's traffic,
// keeps a connection to every Agent, continuously monitors station health
// and resource utilisation (flagging hotspots), collects NF notifications,
// and — the paper's headline feature — orchestrates function roaming: when
// a client moves between cells, its NFs seamlessly migrate to the new
// station.
package manager

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/metrics"
	"gnf/internal/packet"
	"gnf/internal/predict"
	"gnf/internal/share"
	"gnf/internal/trace"
	"gnf/internal/wire"
)

// Errors returned by the manager API.
var (
	ErrUnknownStation = errors.New("manager: no agent for station")
	ErrUnknownClient  = errors.New("manager: unknown client")
	ErrUnknownChain   = errors.New("manager: unknown chain")
	ErrChainExists    = errors.New("manager: chain already attached")
	ErrNotAttached    = errors.New("manager: client not attached to any station")
)

// historyCap bounds every append-only event history the manager keeps
// (notifications, migration reports, autoscaler events): long-lived
// deployments trim to the newest historyCap entries instead of growing
// without bound.
const historyCap = 4096

// Strategy selects how chains move when a client roams.
type Strategy string

// Migration strategies (ablated in experiment E6).
const (
	// StrategyCold starts an equivalent function on the new cell and
	// removes the old one — §2's baseline mechanism. NF state is lost.
	StrategyCold Strategy = "cold"
	// StrategyStateful additionally checkpoints NF state on the source
	// and restores it on the target before enabling — one-shot
	// stop-and-copy, so downtime grows with state size.
	StrategyStateful Strategy = "stateful"
	// StrategyLive replaces stop-and-copy with a pre-copy pipeline: the
	// source keeps serving while iterative delta rounds sync the target,
	// the freeze window ships only the residual delta, and the target's
	// brownout buffer replays frames parked during the freeze. Downtime is
	// independent of state size.
	StrategyLive Strategy = "live"
	// StrategySteer appears in reports when an offloaded client roams:
	// the chains stay on their cloud site and only the traffic detour
	// moves to the client's new station.
	StrategySteer Strategy = "steer"
)

// ChainSpec is a named NF chain attached to a client.
type ChainSpec struct {
	Name      string         `json:"name"`
	Functions []agent.NFSpec `json:"functions"`
	// MaxRTTMs is the chain's QoS budget: the largest predicted
	// client<->chain round-trip (milliseconds) QoSPlacement accepts and
	// roaming tolerates before re-placing the chain. 0 = no budget.
	MaxRTTMs float64 `json:"max_rtt_ms,omitempty"`
}

// MaxRTT returns the chain's QoS budget as a duration (0 = none).
func (c ChainSpec) MaxRTT() time.Duration {
	return time.Duration(c.MaxRTTMs * float64(time.Millisecond))
}

// MigrationReport records one chain migration. Downtime is the dark
// window during which no chain instance could serve the client's traffic;
// Total spans the whole control-plane operation.
type MigrationReport struct {
	Client     string        `json:"client"`
	Chain      string        `json:"chain"`
	From       string        `json:"from"`
	To         string        `json:"to"`
	Strategy   Strategy      `json:"strategy"`
	Downtime   time.Duration `json:"downtime"`
	Total      time.Duration `json:"total"`
	StateBytes int           `json:"state_bytes"`
	// Live-migration pipeline detail: pre-copy rounds run while the source
	// still served, bytes shipped by them, bytes of the frozen residual
	// delta, whether a prewarmed standby absorbed the handoff, and how many
	// brownout-buffered frames the target replayed on activation.
	Rounds         int    `json:"rounds,omitempty"`
	PrecopyBytes   int    `json:"precopy_bytes,omitempty"`
	ResidualBytes  int    `json:"residual_bytes,omitempty"`
	Prewarmed      bool   `json:"prewarmed,omitempty"`
	ReplayedFrames uint64 `json:"replayed_frames,omitempty"`
	Err            string `json:"err,omitempty"`
	// TraceID links the report to its span tree when the triggering handoff
	// was traced ("" otherwise).
	TraceID string `json:"trace_id,omitempty"`
}

// AgentHandle is the manager-side view of one connected agent.
type AgentHandle struct {
	Station string
	// Cloud marks GNFC cloud sites (set at registration).
	Cloud bool
	peer  *wire.Peer
	// tracer is the manager's tracer; callT opens per-RPC client spans on
	// it when the caller's context is recording.
	tracer *trace.Tracer

	mu         sync.Mutex
	lastReport agent.Report
	lastSeen   time.Time
	capacity   uint64

	// Steering group-commit state (see steer in batch.go): concurrent
	// steering updates to this agent coalesce into one batched rule
	// install.
	steerMu       sync.Mutex
	steerPending  []steerReq
	steerFlushing bool
}

// LastReport returns the agent's most recent health report and when it
// arrived.
func (h *AgentHandle) LastReport() (agent.Report, time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastReport, h.lastSeen
}

// call forwards an RPC to the agent.
func (h *AgentHandle) call(method string, in, out any) error {
	return h.peer.Call(method, in, out)
}

// callT forwards an RPC under a trace: when tctx is recording, the call
// gets its own client span and the context rides the frame's trace
// metadata, so the agent's server-side spans nest under it. With a
// non-recording context it is exactly call().
func (h *AgentHandle) callT(tctx trace.Context, method string, in, out any) error {
	sp := h.tracer.Child(tctx, "rpc:"+method)
	if sp == nil {
		return h.peer.Call(method, in, out)
	}
	sp.SetAttr("station", h.Station)
	err := h.peer.CallTraced(method, sp.Context().Header(), in, out)
	sp.End(err)
	return err
}

// Ping round-trips a no-op RPC to the agent — liveness probing and
// control-plane latency measurement.
func (h *AgentHandle) Ping() error {
	return h.call(agent.MethodPing, nil, nil)
}

// clientRec tracks one client's placement and attached chains.
type clientRec struct {
	// mu guards every mutable field below. It is a leaf lock: never
	// acquire another lock, issue an RPC, or append to the journal while
	// holding it (see shards.go for the full ordering).
	mu      sync.Mutex
	station string // current station ("" = disconnected)
	mac     packet.MAC
	ip      packet.IP
	chains  map[string]ChainSpec
	// deployedOn tracks where each chain currently runs (it may lag
	// station while a migration is in flight).
	deployedOn map[string]string
	// offload names the GNFC cloud site hosting this client's chains
	// ("" = chains live at the edge and roam with the client).
	offload string
	// steerOn is the station whose switch currently detours the client's
	// traffic toward the offload site ("" = no detour installed).
	steerOn string
	// lastStation survives disconnects (station goes "" between the
	// break and the make of a handoff) so the mobility predictor can learn
	// the true station-to-station transition.
	lastStation string
	// standby maps chain name -> station holding a prewarmed, state-synced
	// standby deployment for it.
	standby map[string]string
	// migMu serialises migrations for this client: rapid successive
	// handoffs must not race two migrations of the same chain. Ordering:
	// migMu is taken before any shard or record lock.
	migMu sync.Mutex
}

// Manager is the central controller.
type Manager struct {
	clk clock.Clock
	srv *wire.Server

	// predictor learns station-to-station handoffs continuously; prewarm
	// gates whether predictions drive standby staging. metrics aggregates
	// migration observability (histograms + counters); all three own their
	// locking.
	predictor *predict.Markov
	metrics   *metrics.Registry

	// ctrl is the copy-on-write snapshot of read-mostly configuration
	// (agent registry, strategy, placement, topology, failover switches);
	// clients is the sharded client registry; pool is the bounded handoff
	// pipeline and the manager's drain barrier. See shards.go and pool.go.
	ctrl    atomic.Pointer[controlState]
	clients clientTable
	pool    *handoffPool

	// mu serialises snapshot mutations (mutate) and guards the bounded
	// event histories below. It is never held together with a shard or
	// record lock.
	mu            sync.Mutex
	notifications []agent.Alert
	migrations    []MigrationReport
	schedules     []*schedule
	failovers     []FailoverReport

	// Autoscaler state (see autoscaler.go); owns its own lock.
	auto autoscaler

	// tracer stores span trees for every traced control-plane operation;
	// journal is the causally-ordered event log every subsystem appends to.
	// Both own their locking (the journal's lock is a leaf: appending while
	// holding m.mu is safe).
	tracer      *trace.Tracer
	journal     *trace.Journal
	sampleRatio float64

	// Pool sizing, fixed at New (see WithHandoffWorkers).
	poolWorkers int
	poolLimit   int
}

// Option configures New.
type Option func(*Manager)

// WithStrategy sets the roaming migration strategy (default stateful).
func WithStrategy(s Strategy) Option {
	return func(m *Manager) { m.mutate(func(c *controlState) { c.strategy = s }) }
}

// WithHotspotCPU sets the CPU%% threshold for hotspot detection.
func WithHotspotCPU(v float64) Option {
	return func(m *Manager) { m.mutate(func(c *controlState) { c.hotspotCPU = v }) }
}

// WithPrewarm enables predictive prewarming: under StrategyLive, the
// manager stages disabled, state-synced standby chains at the station the
// mobility predictor expects each client to roam to next.
func WithPrewarm() Option {
	return func(m *Manager) { m.mutate(func(c *controlState) { c.prewarm = true }) }
}

// WithTraceSampleRatio sets the fraction of client handoffs that get a
// full span tree (default 1: trace every handoff). Sampling is decided at
// the root, deterministically; unsampled handoffs propagate no trace
// metadata and pay nothing downstream.
func WithTraceSampleRatio(r float64) Option { return func(m *Manager) { m.sampleRatio = r } }

// WithHandoffWorkers sets the handoff pool's worker count (default 16).
// 1 serialises every reconcile — the ablation baseline BenchmarkE10
// compares the sharded-parallel pipeline against.
func WithHandoffWorkers(n int) Option { return func(m *Manager) { m.poolWorkers = n } }

// WithStationConcurrency caps concurrent migrations targeting one station
// (default 16): a storm landing on a single station queues at the manager
// instead of flooding the agent with concurrent Deploys.
func WithStationConcurrency(n int) Option { return func(m *Manager) { m.poolLimit = n } }

// New starts a manager listening for agents on addr ("127.0.0.1:0" picks
// an ephemeral port).
func New(clk clock.Clock, addr string, opts ...Option) (*Manager, error) {
	m := &Manager{
		clk:       clk,
		predictor: predict.NewMarkov(),
		metrics:   metrics.NewRegistry(),
		auto: autoscaler{
			policy:        DefaultAutoscalerPolicy,
			lastProcessed: make(map[string]uint64),
		},
		sampleRatio: 1,
	}
	m.ctrl.Store(&controlState{
		agents:     make(map[string]*AgentHandle),
		strategy:   StrategyStateful,
		placement:  ClientLocalPlacement{},
		hotspotCPU: 80,
		failed:     make(map[string]bool),
	})
	for _, o := range opts {
		o(m)
	}
	m.tracer = trace.New(clk, trace.WithOrigin("manager"),
		trace.WithStore(0), trace.WithSampleRatio(m.sampleRatio))
	m.journal = trace.NewJournal(clk, historyCap)
	m.pool = newHandoffPool(m, m.poolWorkers, m.poolLimit)
	srv, err := wire.NewServer(addr, m.acceptAgent)
	if err != nil {
		m.pool.close()
		return nil, err
	}
	m.srv = srv
	return m, nil
}

// Addr returns the manager's listen address for agents.
func (m *Manager) Addr() string { return m.srv.Addr() }

// Tracer exposes the manager's span store (UI, scenario assertions).
func (m *Manager) Tracer() *trace.Tracer { return m.tracer }

// Journal exposes the causally-ordered event log. Layered subsystems
// (reconciler, UI) append and read through it.
func (m *Manager) Journal() *trace.Journal { return m.journal }

// Close disconnects all agents and stops the server. Closing the server
// first fails in-flight agent RPCs fast, so draining the handoff pool
// never waits on a dead wire.
func (m *Manager) Close() error {
	m.StopAutoscaler()
	err := m.srv.Close()
	m.pool.close()
	return err
}

// Strategy returns the active migration strategy.
func (m *Manager) Strategy() Strategy { return m.state().strategy }

// SetStrategy switches the migration strategy at runtime.
func (m *Manager) SetStrategy(s Strategy) {
	m.mutate(func(c *controlState) { c.strategy = s })
}

// acceptAgent wires handlers for a new agent connection.
func (m *Manager) acceptAgent(p *wire.Peer) {
	var station string // set on register; captured by the close handler
	p.Handle(agent.MethodRegister, func(body json.RawMessage) (any, error) {
		var spec agent.RegisterSpec
		if err := json.Unmarshal(body, &spec); err != nil {
			return nil, err
		}
		h := &AgentHandle{Station: spec.Station, Cloud: spec.Cloud, peer: p, capacity: spec.MemoryBytes, tracer: m.tracer}
		m.mutate(func(c *controlState) {
			c.agents[spec.Station] = h
			delete(c.failed, spec.Station) // a station may rejoin after failure
		})
		// Rejoin reconciliation: a station that kept its dataplane across a
		// management-plane outage may still host chains the manager has
		// since re-placed elsewhere (failover). Garbage-collect those
		// orphans so the rejoining station converges to the manager's view.
		var stale []string
		for _, announced := range spec.Chains {
			if !m.placedOn(announced, spec.Station) {
				stale = append(stale, announced)
			}
		}
		station = spec.Station
		if len(stale) > 0 {
			m.pool.goTracked(func() {
				for _, chain := range stale {
					m.removeStaleChain(h, chain)
				}
			})
		}
		return map[string]string{"status": "registered"}, nil
	})
	p.HandleNotify(agent.MethodReport, func(body json.RawMessage) {
		var rep agent.Report
		if err := json.Unmarshal(body, &rep); err != nil {
			return
		}
		if h := m.state().agents[rep.Station]; h != nil {
			h.mu.Lock()
			h.lastReport = rep
			h.lastSeen = m.clk.Now()
			h.mu.Unlock()
			m.foldReportMetrics(rep)
		}
	})
	// Agents flush finished spans here, synchronously from inside their
	// traced handlers, so a traced call's span tree is complete before the
	// call itself returns.
	p.Handle(agent.MethodSpans, func(body json.RawMessage) (any, error) {
		var batch agent.SpanBatch
		if err := json.Unmarshal(body, &batch); err != nil {
			return nil, err
		}
		m.tracer.Ingest(batch.Spans...)
		return nil, nil
	})
	// Client events arrive as synchronous calls: the agent blocks its
	// handoff path until the manager has applied the placement update and
	// queued the reconcile, so events from concurrent stations apply in
	// true handoff order and WaitIdle (the handoff queued inside
	// applyClientEvent before the response) is sound. The reconciliation
	// RPCs the event triggers run on the handoff pool's workers, so
	// responding here never deadlocks on this peer.
	p.Handle(agent.MethodClientEvent, func(body json.RawMessage) (any, error) {
		var ev agent.ClientEvent
		if err := json.Unmarshal(body, &ev); err != nil {
			return nil, err
		}
		m.applyClientEvent(ev)
		return nil, nil
	})
	// Fire-and-forget notifications are still accepted (older agents).
	// They run on the peer's notify dispatcher: this connection's event
	// order is preserved, but the path is best-effort — under sustained
	// overload the wire layer drops the oldest pending notifications.
	// Reliable, ordered delivery is what the synchronous call path above
	// provides; current agents use it for every client event.
	p.HandleNotify(agent.MethodClientEvent, func(body json.RawMessage) {
		var ev agent.ClientEvent
		if err := json.Unmarshal(body, &ev); err != nil {
			return
		}
		m.applyClientEvent(ev)
	})
	p.HandleNotify(agent.MethodNFAlert, func(body json.RawMessage) {
		var al agent.Alert
		if err := json.Unmarshal(body, &al); err != nil {
			return
		}
		m.recordNotification(al)
	})
	p.OnClose(func(error) {
		if station == "" {
			return
		}
		lost := false
		m.mutate(func(c *controlState) {
			if h, ok := c.agents[station]; ok && h.peer == p {
				delete(c.agents, station)
				lost = true
			}
		})
		// With automatic failover armed, a dropped agent connection
		// immediately triggers re-placement of the chains it hosted.
		if lost && m.state().failoverAuto {
			m.pool.goTracked(func() { m.CheckFailures() })
		}
	})
}

// placedOn reports whether any client's placement puts a chain with this
// name on the station. Chain names are only unique per client, so a name
// may legitimately appear in several records; an announced copy is stale
// only when no record places it here.
func (m *Manager) placedOn(chain, station string) bool {
	found := false
	m.clients.forEach(func(_ string, rec *clientRec) {
		rec.mu.Lock()
		if at, ok := rec.deployedOn[chain]; ok && at == station {
			found = true
		}
		rec.mu.Unlock()
	})
	return found
}

// removeStaleChain garbage-collects one chain a rejoining station
// announced but no client places there. It serialises against roaming by
// holding every referencing client's migration lock and re-checking the
// placement before issuing the removal — a concurrent reconcile may have
// just migrated the chain onto the rejoining station, in which case the
// copy is no longer stale and must survive.
func (m *Manager) removeStaleChain(h *AgentHandle, chain string) {
	type owner struct {
		client string
		rec    *clientRec
	}
	var owners []owner
	m.clients.forEach(func(client string, rec *clientRec) {
		rec.mu.Lock()
		if _, ok := rec.chains[chain]; ok {
			owners = append(owners, owner{client, rec})
		}
		rec.mu.Unlock()
	})
	// Global lock order (client name) so two concurrent rejoin GCs can
	// never deadlock on overlapping owner sets.
	sort.Slice(owners, func(i, j int) bool { return owners[i].client < owners[j].client })
	for _, o := range owners {
		o.rec.migMu.Lock()
		defer o.rec.migMu.Unlock()
	}
	if !m.placedOn(chain, h.Station) {
		h.call(agent.MethodRemove, agent.ChainRef{Chain: chain}, nil)
	}
}

// agentFor resolves a station's handle off the configuration snapshot
// (lock-free).
func (m *Manager) agentFor(station string) (*AgentHandle, error) {
	h, ok := m.state().agents[station]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownStation, station)
	}
	return h, nil
}

// Agents lists connected stations, sorted.
func (m *Manager) Agents() []string {
	agents := m.state().agents
	out := make([]string, 0, len(agents))
	for s := range agents {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// AgentHandleFor returns the handle for a station (UI access to reports).
func (m *Manager) AgentHandleFor(station string) (*AgentHandle, bool) {
	h, ok := m.state().agents[station]
	return h, ok
}

// ClientStation reports where a client is currently attached.
func (m *Manager) ClientStation(client string) (string, bool) {
	rec := m.clients.get(client)
	if rec == nil {
		return "", false
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.station == "" {
		return "", false
	}
	return rec.station, true
}

// seriesCap bounds the per-station dataplane telemetry series the manager
// folds out of agent reports.
const seriesCap = 256

// foldReportMetrics folds one station report's dataplane telemetry into
// the registry: verdict-cache hit ratio, batched-path run amortisation,
// live flow-cache entries and the frame-pool leak signal, each keyed per
// station for /metrics and `gnfctl top`.
func (m *Manager) foldReportMetrics(rep agent.Report) {
	st, sw, now := rep.Station, rep.Switch, m.clk.Now()
	if tot := sw.CacheHits + sw.CacheMisses; tot > 0 {
		m.metrics.Series("switch.cache_hit_ratio."+st, seriesCap).
			Record(now, float64(sw.CacheHits)/float64(tot))
	}
	if sw.BatchRuns > 0 {
		m.metrics.Series("switch.batch_run_len."+st, seriesCap).
			Record(now, float64(sw.BatchFrames)/float64(sw.BatchRuns))
	}
	m.metrics.Gauge("switch.flow_entries." + st).Set(int64(sw.FlowEntries))
	m.metrics.Gauge("frame_pool.outstanding." + st).Set(rep.FramePoolOutstanding)
	if sw.SampledFrames > 0 {
		m.metrics.Gauge("switch.sampled_frames." + st).Set(int64(sw.SampledFrames))
	}
}

// recordNotification appends an NF alert to the notification log,
// trimming to the newest historyCap entries, and journals it.
func (m *Manager) recordNotification(al agent.Alert) {
	m.mu.Lock()
	m.notifications = append(m.notifications, al)
	if len(m.notifications) > historyCap {
		m.notifications = m.notifications[len(m.notifications)-historyCap:]
	}
	m.mu.Unlock()
	m.journal.Append(trace.Event{
		Type:    trace.EventNotify,
		Subject: al.Notification.Kind,
		Station: al.Station,
		Detail:  al.Notification.Message,
	})
}

// Notifications returns a copy of collected NF alerts.
func (m *Manager) Notifications() []agent.Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]agent.Alert{}, m.notifications...)
}

// ChainPlacement is the manager's record of where one chain runs.
type ChainPlacement struct {
	Client string `json:"client"`
	// Chain is the deployment name: the chain name itself for unsplit
	// chains and split-chain heads, "name#i" for anchored segments.
	Chain   string `json:"chain"`
	Station string `json:"station"`
	// Offload names the cloud site hosting the client's chains when the
	// client is offloaded ("" at the edge).
	Offload string `json:"offload,omitempty"`
	// Segment is the split-chain segment index (0 for unsplit chains and
	// heads). Convergence with the client's station only applies to
	// segment 0 — anchored segments are legitimately elsewhere.
	Segment int `json:"segment,omitempty"`
}

// Placements snapshots where the manager believes every attached chain is
// deployed, sorted by client then chain. The invariant auditor compares
// this view against what agents actually host.
func (m *Manager) Placements() []ChainPlacement {
	var out []ChainPlacement
	m.clients.forEach(func(client string, rec *clientRec) {
		rec.mu.Lock()
		for name := range rec.chains {
			out = append(out, ChainPlacement{
				Client:  client,
				Chain:   name,
				Station: rec.deployedOn[name],
				Offload: rec.offload,
			})
		}
		// Anchored segments of split chains are placements in their own
		// right: the auditor matches them against the agents' per-deployment
		// reports, and convergence checking keys off Segment.
		for dep, at := range rec.deployedOn {
			base, seg := agent.ParseSegmentName(dep)
			if seg == 0 {
				continue
			}
			if _, attached := rec.chains[base]; !attached {
				continue
			}
			out = append(out, ChainPlacement{
				Client:  client,
				Chain:   dep,
				Station: at,
				Offload: rec.offload,
				Segment: seg,
			})
		}
		rec.mu.Unlock()
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].Chain < out[j].Chain
	})
	return out
}

// Clients lists registered client IDs, sorted.
func (m *Manager) Clients() []string {
	var out []string
	m.clients.forEach(func(client string, _ *clientRec) {
		out = append(out, client)
	})
	sort.Strings(out)
	return out
}

// Migrations returns a copy of completed migration reports.
func (m *Manager) Migrations() []MigrationReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]MigrationReport{}, m.migrations...)
}

// Predictor exposes the mobility model (UI, tests).
func (m *Manager) Predictor() *predict.Markov { return m.predictor }

// Clock exposes the manager's clock so layered components (the
// reconciler's backoff timers) share the same time source — virtual in
// sims, wall elsewhere.
func (m *Manager) Clock() clock.Clock { return m.clk }

// SetPrewarm toggles predictive standby staging at runtime.
func (m *Manager) SetPrewarm(on bool) {
	m.mutate(func(c *controlState) { c.prewarm = on })
}

// MetricsSnapshot exports the manager's observability registry — the
// migration downtime/total/state-size histograms and counters behind
// `gnfctl migrations` and GET /api/migrations.
func (m *Manager) MetricsSnapshot() metrics.Snapshot { return m.metrics.Snapshot() }

// Migration histogram buckets: downtimes in milliseconds, state in KiB.
var (
	downtimeBucketsMs = []float64{0.1, 0.5, 1, 5, 10, 25, 50, 100, 250, 500, 1000}
	stateBucketsKiB   = []float64{1, 4, 16, 64, 256, 1024, 4096}
)

// recordMigration appends a report and folds it into the observability
// histograms; every path that completes a migration funnels through here.
func (m *Manager) recordMigration(rep MigrationReport) {
	m.mu.Lock()
	m.migrations = append(m.migrations, rep)
	if len(m.migrations) > historyCap {
		m.migrations = m.migrations[len(m.migrations)-historyCap:]
	}
	m.mu.Unlock()
	m.journal.Append(trace.Event{
		Type:    trace.EventMigrate,
		Subject: rep.Chain,
		Station: rep.To,
		TraceID: rep.TraceID,
		Detail: fmt.Sprintf("client=%s %s->%s strategy=%s downtime=%s",
			rep.Client, rep.From, rep.To, rep.Strategy, rep.Downtime),
		Err: rep.Err,
	})
	if rep.Err != "" {
		m.metrics.Counter("migration.failed").Inc()
		return
	}
	m.metrics.Counter("migration.count").Inc()
	if rep.Prewarmed {
		m.metrics.Counter("migration.prewarmed").Inc()
	}
	if rep.ReplayedFrames > 0 {
		m.metrics.Counter("migration.replayed_frames").Add(rep.ReplayedFrames)
	}
	m.metrics.Histogram("migration.downtime_ms", downtimeBucketsMs...).
		Observe(float64(rep.Downtime.Microseconds()) / 1000)
	m.metrics.Histogram("migration.total_ms", downtimeBucketsMs...).
		Observe(float64(rep.Total.Microseconds()) / 1000)
	m.metrics.Histogram("migration.state_kib", stateBucketsKiB...).
		Observe(float64(rep.StateBytes) / 1024)
}

// SetHotspotCPU adjusts the hotspot CPU threshold at runtime.
func (m *Manager) SetHotspotCPU(v float64) {
	m.mutate(func(c *controlState) { c.hotspotCPU = v })
}

// Hotspots returns stations whose last report exceeds the CPU threshold —
// §3: "allowing the provider to detect resource-hotspots".
func (m *Manager) Hotspots() []string {
	st := m.state()
	var out []string
	for _, h := range st.agents {
		rep, seen := h.LastReport()
		if !seen.IsZero() && rep.Usage.CPUPercent >= st.hotspotCPU {
			out = append(out, h.Station)
		}
	}
	sort.Strings(out)
	return out
}

// nfImagesFor lists the repository images a chain needs.
func nfImagesFor(spec ChainSpec) []string {
	imgs := make([]string, 0, len(spec.Functions))
	for _, f := range spec.Functions {
		imgs = append(imgs, agent.ImageForKind(f.Kind))
	}
	return imgs
}

// chainConfigHashes computes the chain's canonical pool hashes for
// placement hints: the whole-chain key first (what agents key shared
// instances on today), then every shorter prefix key. A station hosting a
// pool for a chain that is a prefix of this one therefore also matches —
// the placement-side half of prefix-level dedup.
func chainConfigHashes(spec ChainSpec) []string {
	fns := make([]share.FuncSpec, 0, len(spec.Functions))
	for _, f := range spec.Functions {
		fns = append(fns, share.FuncSpec{Kind: f.Kind, Params: f.Params})
	}
	keys := share.PrefixKeys(fns, nil)
	out := make([]string, 0, len(keys))
	for i := len(keys) - 1; i >= 0; i-- {
		out = append(out, keys[i].ConfigHash)
	}
	return out
}
