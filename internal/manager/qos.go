// Topology-aware QoS placement: the Manager can be handed the modeled
// station graph (internal/topology.Graph), and placement decisions then
// rank candidates by the predicted round-trip between the client's current
// station and the candidate — not just by CPU load. Two policies build on
// the matrix: LatencyAwarePlacement minimises predicted RTT outright, and
// QoSPlacement enforces each chain's MaxRTT budget with a cloud-offload
// fallback (Forti et al., "Probabilistic QoS-aware Placement of VNF chains
// at the Edge").
package manager

import (
	"sort"
	"time"

	"gnf/internal/topology"
)

// SetTopology installs the station graph used to predict client<->chain
// RTTs. Placement policies see the prediction as StationInfo.RTTToClient;
// roaming additionally lets budgeted chains lag behind their client while
// the old station still meets the budget. nil clears the graph.
func (m *Manager) SetTopology(g *topology.Graph) {
	m.mutate(func(c *controlState) { c.topo = g })
}

// Topology returns the installed station graph (nil when none).
func (m *Manager) Topology() *topology.Graph {
	return m.state().topo
}

// annotateRTT fills RTTToClient/RTTKnown on every candidate from the
// graph's latency matrix, relative to the station serving the client.
func annotateRTT(g *topology.Graph, cands []StationInfo, clientAt string) {
	if g == nil || clientAt == "" {
		return
	}
	for i := range cands {
		rtt, ok := g.RTT(topology.StationID(clientAt), topology.StationID(cands[i].Station))
		cands[i].RTTToClient, cands[i].RTTKnown = rtt, ok
	}
}

// rttAware marks policies that rank on predicted RTT; with one active (and
// a topology installed) roaming lets budgeted chains stay put while their
// old station still meets the chain's MaxRTT budget.
type rttAware interface{ usesRTT() }

// DefaultCloudPenalty is added to a cloud candidate's predicted RTT when a
// latency policy's CloudPenalty field is zero: with equal predictions the
// edge must win, since the matrix cannot price the cloud's jitter and
// shared-WAN variance.
const DefaultCloudPenalty = 10 * time.Millisecond

// LatencyAwarePlacement picks the candidate with the lowest predicted
// client RTT, breaking ties by load (lessLoaded) and penalising cloud
// sites by CloudPenalty. Candidates without an RTT prediction (no
// topology, or no path) lose to any predicted one; with no predictions at
// all it degrades to least-loaded.
type LatencyAwarePlacement struct {
	// CloudPenalty biases against cloud sites (0 = DefaultCloudPenalty).
	CloudPenalty time.Duration
}

// Name implements Placement.
func (LatencyAwarePlacement) Name() string { return "latency-aware" }

func (LatencyAwarePlacement) usesRTT() {}

// effectiveRTT is the ranking key: predicted RTT plus the cloud penalty.
func (p LatencyAwarePlacement) effectiveRTT(c StationInfo) (time.Duration, bool) {
	if !c.RTTKnown {
		return 0, false
	}
	rtt := c.RTTToClient
	if c.Cloud {
		pen := p.CloudPenalty
		if pen == 0 {
			pen = DefaultCloudPenalty
		}
		rtt += pen
	}
	return rtt, true
}

// Pick implements Placement.
func (p LatencyAwarePlacement) Pick(cands []StationInfo, hint PlacementHint) (string, bool) {
	if !hint.AllowCloud {
		cands = edgeOnly(cands)
	}
	if len(cands) == 0 {
		return "", false
	}
	best, bestRTT, found := StationInfo{}, time.Duration(0), false
	for _, c := range cands {
		rtt, ok := p.effectiveRTT(c)
		if !ok {
			continue
		}
		if !found || rtt < bestRTT || (rtt == bestRTT && lessLoaded(c, best)) {
			best, bestRTT, found = c, rtt, true
		}
	}
	if !found {
		// No RTT prediction anywhere: the graph is absent, so load is the
		// only signal left.
		return LeastLoadedPlacement{}.Pick(cands, PlacementHint{AllowCloud: true})
	}
	return best.Station, true
}

// QoSPlacement enforces a per-chain RTT budget (ChainSpec.MaxRTTMs,
// carried in PlacementHint.MaxRTT): candidates whose predicted chain RTT
// would exceed the budget are rejected, and the latency-aware ranking runs
// over the survivors. When nothing fits the budget it falls back to cloud
// offload — the lowest-RTT cloud site, if the hint permits clouds —
// and as a last resort places best-effort at the minimum-RTT candidate.
// Without a budget it behaves exactly like LatencyAwarePlacement.
type QoSPlacement struct {
	// CloudPenalty biases ties against clouds (0 = DefaultCloudPenalty).
	CloudPenalty time.Duration
}

// Name implements Placement.
func (QoSPlacement) Name() string { return "qos" }

func (QoSPlacement) usesRTT() {}

// Pick implements Placement.
func (p QoSPlacement) Pick(cands []StationInfo, hint PlacementHint) (string, bool) {
	la := LatencyAwarePlacement{CloudPenalty: p.CloudPenalty}
	budget := hint.MaxRTT
	if budget <= 0 {
		return la.Pick(cands, hint)
	}
	pool := cands
	if !hint.AllowCloud {
		pool = edgeOnly(cands)
	}
	var fit []StationInfo
	for _, c := range pool {
		if c.RTTKnown && c.RTTToClient <= budget {
			fit = append(fit, c)
		}
	}
	if len(fit) > 0 {
		return la.Pick(fit, PlacementHint{AllowCloud: true})
	}
	if hint.AllowCloud {
		// Budget unreachable at the edge: offload to the closest cloud.
		var clouds []StationInfo
		for _, c := range cands {
			if c.Cloud {
				clouds = append(clouds, c)
			}
		}
		if len(clouds) > 0 {
			return la.Pick(clouds, PlacementHint{AllowCloud: true})
		}
	}
	return la.Pick(pool, PlacementHint{AllowCloud: true})
}

// placementCatalog maps registry names to constructors. RoundRobin is
// stateful, hence fresh instances rather than shared values.
var placementCatalog = map[string]func() Placement{
	"client-local":  func() Placement { return ClientLocalPlacement{} },
	"least-loaded":  func() Placement { return LeastLoadedPlacement{} },
	"spread":        func() Placement { return SpreadPlacement{} },
	"round-robin":   func() Placement { return &RoundRobinPlacement{} },
	"sharing-first": func() Placement { return SharingFirstPlacement{} },
	"cloud-first":   func() Placement { return CloudFirstPlacement{} },
	"latency-aware": func() Placement { return LatencyAwarePlacement{} },
	"qos":           func() Placement { return QoSPlacement{} },
}

// PlacementFor resolves a policy name (as accepted by the gnf-manager /
// gnf-demo -placement flags and scenario "placement" field) to a fresh
// policy instance.
func PlacementFor(name string) (Placement, bool) {
	ctor, ok := placementCatalog[name]
	if !ok {
		return nil, false
	}
	return ctor(), true
}

// PlacementNames lists the registered policy names, sorted.
func PlacementNames() []string {
	out := make([]string, 0, len(placementCatalog))
	for name := range placementCatalog {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
