package manager_test

import (
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/manager"
	"gnf/internal/metrics"
	"gnf/internal/wire"
)

func infos() []manager.StationInfo {
	return []manager.StationInfo{
		{Station: "st-a", CPUPercent: 40, Capacity: 100, MemUsed: 10, Chains: 3},
		{Station: "st-b", CPUPercent: 10, Capacity: 100, MemUsed: 90, Chains: 1},
		{Station: "st-c", CPUPercent: 10, Capacity: 100, MemUsed: 20, Chains: 2},
		{Station: "cloud", Cloud: true, CPUPercent: 1, Capacity: 0, Chains: 0},
	}
}

func TestLeastLoadedPlacement(t *testing.T) {
	p := manager.LeastLoadedPlacement{}
	got, ok := p.Pick(infos(), manager.PlacementHint{})
	if !ok || got != "st-c" {
		t.Fatalf("pick = %q (lowest CPU, then lowest memory pressure)", got)
	}
	// Clouds only join when allowed.
	got, _ = p.Pick(infos(), manager.PlacementHint{AllowCloud: true})
	if got != "cloud" {
		t.Fatalf("with AllowCloud pick = %q", got)
	}
	// Stale stations lose to reporting ones.
	cands := []manager.StationInfo{
		{Station: "st-x", Stale: true},
		{Station: "st-y", CPUPercent: 99},
	}
	if got, _ = p.Pick(cands, manager.PlacementHint{}); got != "st-y" {
		t.Fatalf("stale pick = %q", got)
	}
	if _, ok = p.Pick(nil, manager.PlacementHint{}); ok {
		t.Fatal("empty candidate list must not pick")
	}
}

func TestSpreadPlacement(t *testing.T) {
	got, ok := manager.SpreadPlacement{}.Pick(infos(), manager.PlacementHint{})
	if !ok || got != "st-b" {
		t.Fatalf("pick = %q (fewest chains among edge)", got)
	}
	got, _ = manager.SpreadPlacement{}.Pick(infos(), manager.PlacementHint{AllowCloud: true})
	if got != "cloud" {
		t.Fatalf("with AllowCloud pick = %q", got)
	}
}

func TestRoundRobinPlacementCycles(t *testing.T) {
	var p manager.RoundRobinPlacement
	seen := make(map[string]int)
	for i := 0; i < 6; i++ {
		got, ok := p.Pick(infos(), manager.PlacementHint{})
		if !ok {
			t.Fatal("no pick")
		}
		seen[got]++
	}
	// Three edge candidates, six picks: each exactly twice.
	for _, st := range []string{"st-a", "st-b", "st-c"} {
		if seen[st] != 2 {
			t.Fatalf("distribution = %v", seen)
		}
	}
}

func TestClientLocalPlacement(t *testing.T) {
	p := manager.ClientLocalPlacement{}
	got, ok := p.Pick(infos(), manager.PlacementHint{Prefer: "st-a"})
	if !ok || got != "st-a" {
		t.Fatalf("pick = %q (client's station)", got)
	}
	// Preferred station not a candidate: fall back to least-loaded.
	got, _ = p.Pick(infos(), manager.PlacementHint{Prefer: "st-dead"})
	if got != "st-c" {
		t.Fatalf("fallback pick = %q", got)
	}
}

func TestSharingFirstPlacement(t *testing.T) {
	cands := infos()
	// st-a already hosts a compatible shared instance; st-b hosts one of a
	// different configuration.
	cands[0].PoolHashes = []string{"hash-fw"}
	cands[1].PoolHashes = []string{"hash-other"}

	p := manager.SharingFirstPlacement{}
	got, ok := p.Pick(cands, manager.PlacementHint{ConfigHashes: []string{"hash-fw"}})
	if !ok || got != "st-a" {
		t.Fatalf("pick = %q (station with the compatible instance must win despite higher load)", got)
	}
	// Two compatible hosts: least-loaded among them wins.
	cands[2].PoolHashes = []string{"hash-fw"}
	if got, _ = p.Pick(cands, manager.PlacementHint{ConfigHashes: []string{"hash-fw"}}); got != "st-c" {
		t.Fatalf("pick among hosts = %q", got)
	}
	// No compatible host: defer to the fallback (default client-local).
	got, ok = p.Pick(cands, manager.PlacementHint{
		ConfigHashes: []string{"hash-none"}, Prefer: "st-b",
	})
	if !ok || got != "st-b" {
		t.Fatalf("fallback pick = %q", got)
	}
	// No hashes at all behaves like the fallback outright.
	if got, _ = p.Pick(cands, manager.PlacementHint{Prefer: "st-a"}); got != "st-a" {
		t.Fatalf("hashless pick = %q", got)
	}
	// Clouds stay excluded unless the hint allows them, even when hosting.
	cloud := []manager.StationInfo{
		{Station: "nimbus", Cloud: true, PoolHashes: []string{"hash-fw"}},
		{Station: "st-z", CPUPercent: 50},
	}
	if got, _ = p.Pick(cloud, manager.PlacementHint{ConfigHashes: []string{"hash-fw"}}); got != "st-z" {
		t.Fatalf("cloud exclusion pick = %q", got)
	}
	if got, _ = p.Pick(cloud, manager.PlacementHint{ConfigHashes: []string{"hash-fw"}, AllowCloud: true}); got != "nimbus" {
		t.Fatalf("cloud allowed pick = %q", got)
	}
	if p.Name() != "sharing-first" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestCloudFirstPlacement(t *testing.T) {
	p := manager.CloudFirstPlacement{}
	got, ok := p.Pick(infos(), manager.PlacementHint{})
	if !ok || got != "cloud" {
		t.Fatalf("pick = %q", got)
	}
	// No cloud connected: degrade to edge least-loaded.
	edge := infos()[:3]
	if got, _ = p.Pick(edge, manager.PlacementHint{}); got != "st-c" {
		t.Fatalf("edge fallback = %q", got)
	}
}

// rttInfos is a candidate set on a modeled topology: the near station is
// loaded, the far one idle, one station has no RTT prediction, and a
// cloud site sits close in raw RTT.
func rttInfos() []manager.StationInfo {
	return []manager.StationInfo{
		{Station: "st-near", CPUPercent: 80, RTTToClient: 10 * time.Millisecond, RTTKnown: true},
		{Station: "st-far", CPUPercent: 5, RTTToClient: 30 * time.Millisecond, RTTKnown: true},
		{Station: "st-lost", CPUPercent: 1}, // no path in the graph
		{Station: "nimbus", Cloud: true, CPUPercent: 1, RTTToClient: 6 * time.Millisecond, RTTKnown: true},
	}
}

func TestLatencyAwarePlacement(t *testing.T) {
	p := manager.LatencyAwarePlacement{}
	// Minimum predicted RTT wins regardless of load; clouds excluded.
	got, ok := p.Pick(rttInfos(), manager.PlacementHint{})
	if !ok || got != "st-near" {
		t.Fatalf("pick = %q (min RTT must beat idle-but-far)", got)
	}
	// The cloud's 6ms + 10ms default penalty loses to the 10ms edge.
	if got, _ = p.Pick(rttInfos(), manager.PlacementHint{AllowCloud: true}); got != "st-near" {
		t.Fatalf("penalised cloud pick = %q", got)
	}
	// Shrinking the penalty lets the close cloud win.
	lenient := manager.LatencyAwarePlacement{CloudPenalty: time.Millisecond}
	if got, _ = lenient.Pick(rttInfos(), manager.PlacementHint{AllowCloud: true}); got != "nimbus" {
		t.Fatalf("lenient cloud pick = %q", got)
	}
	// Equal RTT: load breaks the tie.
	tied := []manager.StationInfo{
		{Station: "st-a", CPUPercent: 50, RTTToClient: 10 * time.Millisecond, RTTKnown: true},
		{Station: "st-b", CPUPercent: 5, RTTToClient: 10 * time.Millisecond, RTTKnown: true},
	}
	if got, _ = p.Pick(tied, manager.PlacementHint{}); got != "st-b" {
		t.Fatalf("tie pick = %q", got)
	}
	// No predictions at all (no topology installed): degrade to least-loaded.
	blind := []manager.StationInfo{
		{Station: "st-x", CPUPercent: 50},
		{Station: "st-y", CPUPercent: 5},
	}
	if got, _ = p.Pick(blind, manager.PlacementHint{}); got != "st-y" {
		t.Fatalf("blind pick = %q", got)
	}
	if _, ok = p.Pick(nil, manager.PlacementHint{}); ok {
		t.Fatal("empty candidate list must not pick")
	}
}

func TestQoSPlacement(t *testing.T) {
	p := manager.QoSPlacement{}
	// Budget satisfiable at the edge: latency-aware among the fitting.
	got, ok := p.Pick(rttInfos(), manager.PlacementHint{MaxRTT: 15 * time.Millisecond})
	if !ok || got != "st-near" {
		t.Fatalf("in-budget pick = %q", got)
	}
	// Budget rejects the near station: the idle far one fits.
	if got, _ = p.Pick(rttInfos(), manager.PlacementHint{MaxRTT: 40 * time.Millisecond}); got != "st-near" {
		t.Fatalf("wide budget pick = %q (lowest RTT among fitting)", got)
	}
	cands := rttInfos()
	cands[0].RTTToClient = 50 * time.Millisecond // near station degraded
	if got, _ = p.Pick(cands, manager.PlacementHint{MaxRTT: 40 * time.Millisecond}); got != "st-far" {
		t.Fatalf("pick after degradation = %q", got)
	}
	// No edge station fits: fall back to cloud offload when permitted.
	got, ok = p.Pick(rttInfos(), manager.PlacementHint{MaxRTT: 5 * time.Millisecond, AllowCloud: true})
	if !ok || got != "nimbus" {
		t.Fatalf("cloud fallback pick = %q", got)
	}
	// Clouds forbidden: best-effort minimum RTT at the edge.
	if got, _ = p.Pick(rttInfos(), manager.PlacementHint{MaxRTT: 5 * time.Millisecond}); got != "st-near" {
		t.Fatalf("best-effort pick = %q", got)
	}
	// No budget: identical to latency-aware.
	if got, _ = p.Pick(rttInfos(), manager.PlacementHint{}); got != "st-near" {
		t.Fatalf("budgetless pick = %q", got)
	}
}

func TestPlacementRegistry(t *testing.T) {
	for _, name := range manager.PlacementNames() {
		p, ok := manager.PlacementFor(name)
		if !ok {
			t.Fatalf("registered policy %q did not resolve", name)
		}
		if p.Name() != name {
			t.Fatalf("PlacementFor(%q).Name() = %q", name, p.Name())
		}
	}
	if _, ok := manager.PlacementFor("teleport"); ok {
		t.Fatal("unknown policy resolved")
	}
}

func TestStationInfosSnapshotsReports(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	dial := func(station string, cloud bool, cpu float64) *wire.Peer {
		peer, err := wire.Dial(mgr.Addr())
		if err != nil {
			t.Fatal(err)
		}
		go peer.Run()
		t.Cleanup(func() { peer.Close() })
		spec := agent.RegisterSpec{Station: station, MemoryBytes: 1 << 30, Cloud: cloud}
		if err := peer.Call(agent.MethodRegister, spec, nil); err != nil {
			t.Fatal(err)
		}
		peer.Notify(agent.MethodReport, agent.Report{
			Station: station,
			Usage:   metrics.ResourceUsage{CPUPercent: cpu, MemoryBytes: 512},
		})
		return peer
	}
	dial("st-a", false, 30)
	dial("nimbus", true, 2)

	waitFor(t, 2*time.Second, func() bool {
		inf := mgr.StationInfos()
		if len(inf) != 2 {
			return false
		}
		return !inf[0].Stale && !inf[1].Stale
	}, "both stations reported")

	inf := mgr.StationInfos()
	if inf[0].Station != "nimbus" || !inf[0].Cloud || inf[0].CPUPercent != 2 {
		t.Fatalf("info[0] = %+v", inf[0])
	}
	if inf[1].Station != "st-a" || inf[1].Cloud || inf[1].MemUsed != 512 || inf[1].Capacity != 1<<30 {
		t.Fatalf("info[1] = %+v", inf[1])
	}
	if got := mgr.StationInfos("nimbus"); len(got) != 1 || got[0].Station != "st-a" {
		t.Fatalf("exclusion failed: %+v", got)
	}
}

func TestSetPlacementIsUsedByEvacuation(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if mgr.Placement().Name() != "client-local" {
		t.Fatalf("default placement = %q", mgr.Placement().Name())
	}
	mgr.SetPlacement(manager.SpreadPlacement{})
	if mgr.Placement().Name() != "spread" {
		t.Fatalf("placement = %q", mgr.Placement().Name())
	}
}
