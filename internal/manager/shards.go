// Sharded manager state: the substrate that lets thousands of concurrent
// handoffs proceed without convoying on one global mutex.
//
// Two structures replace the old single Manager.mu critical section:
//
//   - controlState is an immutable copy-on-write snapshot of the manager's
//     read-mostly configuration — the agent registry, migration strategy,
//     placement policy, topology graph and failover switches. Hot paths
//     (reconcileClient's loop, place(), agentFor) load it with one atomic
//     pointer read and never contend; mutations clone under Manager.mu and
//     publish a new snapshot. This is the same trick the batched dataplane
//     uses for switch tables.
//
//   - clientTable shards the client registry by FNV hash of the client
//     name. Each shard's mutex guards only that shard's map; the mutable
//     fields of a clientRec are guarded by the record's own leaf mutex
//     (clientRec.mu), so two clients handing off concurrently touch
//     disjoint locks.
//
// Lock ordering (outermost first): rec.migMu > shard.mu > rec.mu. The
// snapshot is lock-free to read, so no path ever holds Manager.mu together
// with a shard or record lock. rec.mu is a leaf: never acquire any other
// lock, issue an RPC, or append to the journal while holding it.
package manager

import (
	"hash/fnv"
	"sync"
	"time"

	"gnf/internal/topology"
)

// controlState is the manager's read-mostly configuration, published as an
// immutable snapshot. Readers treat every field (including map contents)
// as frozen; all mutation goes through Manager.mutate, which clones.
type controlState struct {
	agents    map[string]*AgentHandle
	strategy  Strategy
	prewarm   bool
	placement Placement
	topo      *topology.Graph
	// hotspotCPU is the CPU percent threshold for hotspot detection.
	hotspotCPU float64
	// tunneler provisions a shaped tunnel between two stations on demand
	// (split-chain inter-segment legs); nil means tunnels pre-exist.
	tunneler func(a, b string) error

	// Failover configuration and the set of stations declared dead.
	failoverTimeout time.Duration
	failoverAuto    bool
	failed          map[string]bool
}

// clone deep-copies the maps so the mutation can edit them without
// touching the published snapshot.
func (s *controlState) clone() *controlState {
	next := *s
	next.agents = make(map[string]*AgentHandle, len(s.agents))
	for k, v := range s.agents {
		next.agents[k] = v
	}
	next.failed = make(map[string]bool, len(s.failed))
	for k, v := range s.failed {
		next.failed[k] = v
	}
	return &next
}

// state returns the current configuration snapshot (lock-free).
func (m *Manager) state() *controlState { return m.ctrl.Load() }

// mutate publishes a new configuration snapshot derived from the current
// one. Manager.mu serialises writers; readers are never blocked.
func (m *Manager) mutate(fn func(*controlState)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := m.ctrl.Load().clone()
	fn(next)
	m.ctrl.Store(next)
}

// clientShards is the shard count of the client table. Handoff storms fan
// thousands of clients across these; 64 keeps collision odds low without
// bloating the zero-client footprint.
const clientShards = 64

// clientShard is one bucket of the sharded client registry.
type clientShard struct {
	mu      sync.Mutex
	clients map[string]*clientRec
}

// clientTable is the sharded client registry. The registry is add-only
// (clients are never removed), which is what makes the lock-free snapshot
// iteration in forEach sound.
type clientTable struct {
	shards [clientShards]clientShard
}

func (t *clientTable) shard(client string) *clientShard {
	h := fnv.New32a()
	h.Write([]byte(client))
	return &t.shards[h.Sum32()%clientShards]
}

// get returns the client's record, or nil when unknown.
func (t *clientTable) get(client string) *clientRec {
	sh := t.shard(client)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.clients[client]
}

// getOrCreate returns the client's record, creating an empty one on first
// sight.
func (t *clientTable) getOrCreate(client string) *clientRec {
	sh := t.shard(client)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.clients[client]
	if !ok {
		rec = &clientRec{
			chains:     make(map[string]ChainSpec),
			deployedOn: make(map[string]string),
		}
		if sh.clients == nil {
			sh.clients = make(map[string]*clientRec)
		}
		sh.clients[client] = rec
	}
	return rec
}

// forEach visits every registered client. Each shard is snapshotted under
// its own lock and the callback runs lock-free, so callbacks may take
// rec.mu (or rec.migMu) freely. The sweep is not atomic across shards —
// exactly as atomic as the callers need, since every consumer re-validates
// under per-record locks before acting.
func (t *clientTable) forEach(fn func(client string, rec *clientRec)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		names := make([]string, 0, len(sh.clients))
		recs := make([]*clientRec, 0, len(sh.clients))
		for name, rec := range sh.clients {
			names = append(names, name)
			recs = append(recs, rec)
		}
		sh.mu.Unlock()
		for j, name := range names {
			fn(name, recs[j])
		}
	}
}
