package manager

import (
	"fmt"
	"sort"
	"time"

	"gnf/internal/agent"
)

// This file implements two operational features of §3:
//
//   - scheduled NFs: "New NFs can be attached in seconds or removed from
//     clients as well as scheduled to be enabled only during specific time
//     periods" — Schedule/EvaluateSchedules below;
//   - hotspot response: the Manager detects resource hotspots "and
//     therefore the part of the infrastructure that should be upgraded" —
//     EvacuateStation moves every chain off a station for maintenance.

// Window is an absolute [EnableAt, DisableAt) activation period for a
// chain. A zero DisableAt means "enabled forever after EnableAt".
type Window struct {
	EnableAt  time.Time `json:"enable_at"`
	DisableAt time.Time `json:"disable_at"`
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	if t.Before(w.EnableAt) {
		return false
	}
	return w.DisableAt.IsZero() || t.Before(w.DisableAt)
}

// schedule tracks one chain's activation window and last applied state.
type schedule struct {
	client  string
	chain   string
	window  Window
	enabled *bool // last state pushed to the agent (nil = unknown)
}

// Schedule registers an activation window for an attached chain. The
// window takes effect on the next EvaluateSchedules pass (the ticker in
// RunScheduler, or a manual call from tests/virtual-clock sims).
func (m *Manager) Schedule(client, chainName string, w Window) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.clients[client]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	if _, ok := rec.chains[chainName]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownChain, chainName)
	}
	m.schedules = append(m.schedules, &schedule{client: client, chain: chainName, window: w})
	return nil
}

// Schedules lists registered windows as (client, chain, window) triples,
// sorted for stable output.
func (m *Manager) Schedules() []struct {
	Client, Chain string
	Window        Window
} {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]struct {
		Client, Chain string
		Window        Window
	}, 0, len(m.schedules))
	for _, s := range m.schedules {
		out = append(out, struct {
			Client, Chain string
			Window        Window
		}{s.client, s.chain, s.window})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].Chain < out[j].Chain
	})
	return out
}

// EvaluateSchedules applies every window against the manager clock's
// current time, enabling or disabling chains whose desired state changed.
// It returns the number of state transitions performed.
func (m *Manager) EvaluateSchedules() int {
	now := m.clk.Now()
	type action struct {
		sched  *schedule
		target string
		chain  string
		enable bool
	}
	m.mu.Lock()
	var actions []action
	for _, s := range m.schedules {
		want := s.window.Contains(now)
		if s.enabled != nil && *s.enabled == want {
			continue
		}
		rec, ok := m.clients[s.client]
		if !ok {
			continue
		}
		station := rec.deployedOn[s.chain]
		if station == "" {
			continue
		}
		actions = append(actions, action{sched: s, target: station, chain: s.chain, enable: want})
	}
	m.mu.Unlock()

	applied := 0
	for _, a := range actions {
		h, err := m.agentFor(a.target)
		if err != nil {
			continue
		}
		method := agent.MethodDisable
		if a.enable {
			method = agent.MethodEnable
		}
		if err := h.call(method, agent.ChainRef{Chain: a.chain}, nil); err != nil {
			continue
		}
		want := a.enable
		m.mu.Lock()
		a.sched.enabled = &want
		m.mu.Unlock()
		applied++
	}
	return applied
}

// RunScheduler evaluates schedules every interval on the wall clock until
// stop is closed. Virtual-clock simulations call EvaluateSchedules
// directly after advancing time instead.
func (m *Manager) RunScheduler(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.EvaluateSchedules()
		}
	}
}

// LeastLoadedStation picks the connected station with the lowest reported
// CPU load, excluding the given one; ok is false when no candidate exists.
// This is the placement policy EvacuateStation uses.
func (m *Manager) LeastLoadedStation(exclude string) (string, bool) {
	m.mu.Lock()
	handles := make([]*AgentHandle, 0, len(m.agents))
	for st, h := range m.agents {
		if st != exclude {
			handles = append(handles, h)
		}
	}
	m.mu.Unlock()
	best, ok := "", false
	bestCPU := 0.0
	// Sort for deterministic tie-break.
	sort.Slice(handles, func(i, j int) bool { return handles[i].Station < handles[j].Station })
	for _, h := range handles {
		rep, _ := h.LastReport()
		if !ok || rep.Usage.CPUPercent < bestCPU {
			best, bestCPU, ok = h.Station, rep.Usage.CPUPercent, true
		}
	}
	return best, ok
}

// EvacuateStation migrates every chain deployed on station elsewhere:
// chains whose client is attached to another station follow their client;
// orphaned chains go to the least-loaded surviving station. It returns the
// migration reports (one per chain).
func (m *Manager) EvacuateStation(station string) ([]MigrationReport, error) {
	m.mu.Lock()
	type job struct {
		client string
		rec    *clientRec
		spec   ChainSpec
		to     string
	}
	var jobs []job
	for client, rec := range m.clients {
		for name, at := range rec.deployedOn {
			if at != station {
				continue
			}
			to := rec.station
			if to == station || to == "" {
				to = "" // resolved below, outside the lock
			}
			jobs = append(jobs, job{client: client, rec: rec, spec: rec.chains[name], to: to})
		}
	}
	strategy := m.strategy
	m.mu.Unlock()

	var reports []MigrationReport
	for _, j := range jobs {
		to := j.to
		if to == "" {
			fallback, ok := m.place(PlacementHint{
				Client: j.client, Chain: j.spec.Name,
				ConfigHashes: chainConfigHashes(j.spec),
			}, station)
			if !ok {
				return reports, fmt.Errorf("%w: no station to evacuate %s/%s to",
					ErrUnknownStation, j.client, j.spec.Name)
			}
			to = fallback
		}
		j.rec.migMu.Lock()
		rep := m.migrateChain(j.client, j.spec, station, to, strategy)
		m.mu.Lock()
		if rep.Err == "" {
			j.rec.deployedOn[j.spec.Name] = to
		}
		m.mu.Unlock()
		m.recordMigration(rep)
		j.rec.migMu.Unlock()
		reports = append(reports, rep)
	}
	return reports, nil
}
