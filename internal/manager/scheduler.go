package manager

import (
	"fmt"
	"sort"
	"time"

	"gnf/internal/agent"
	"gnf/internal/trace"
)

// This file implements two operational features of §3:
//
//   - scheduled NFs: "New NFs can be attached in seconds or removed from
//     clients as well as scheduled to be enabled only during specific time
//     periods" — Schedule/EvaluateSchedules below;
//   - hotspot response: the Manager detects resource hotspots "and
//     therefore the part of the infrastructure that should be upgraded" —
//     EvacuateStation moves every chain off a station for maintenance.

// Window is an absolute [EnableAt, DisableAt) activation period for a
// chain. A zero DisableAt means "enabled forever after EnableAt".
type Window struct {
	EnableAt  time.Time `json:"enable_at"`
	DisableAt time.Time `json:"disable_at"`
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	if t.Before(w.EnableAt) {
		return false
	}
	return w.DisableAt.IsZero() || t.Before(w.DisableAt)
}

// schedule tracks one chain's activation window and last applied state.
type schedule struct {
	client  string
	chain   string
	window  Window
	enabled *bool // last state pushed to the agent (nil = unknown)
	dropped bool  // unregistered (detach/Unschedule); never apply again
}

// Schedule registers an activation window for an attached chain. The
// window takes effect on the next EvaluateSchedules pass (the ticker in
// RunScheduler, or a manual call from tests/virtual-clock sims).
// Re-registering a window for the same (client, chain) replaces the old
// one — two live windows for one chain would fight each other, flapping
// the chain on every evaluation pass.
func (m *Manager) Schedule(client, chainName string, w Window) error {
	rec := m.clients.get(client)
	if rec == nil {
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	rec.mu.Lock()
	_, attached := rec.chains[chainName]
	rec.mu.Unlock()
	if !attached {
		return fmt.Errorf("%w: %s", ErrUnknownChain, chainName)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, s := range m.schedules {
		if s.client == client && s.chain == chainName {
			// Retire the old entry rather than mutating it: an in-flight
			// EvaluateSchedules pass may hold a pointer to it, and must not
			// apply the replaced window's transition.
			s.dropped = true
			m.schedules[i] = &schedule{client: client, chain: chainName, window: w}
			return nil
		}
	}
	m.schedules = append(m.schedules, &schedule{client: client, chain: chainName, window: w})
	return nil
}

// Unschedule drops the activation window of a (client, chain) pair,
// reporting whether one was registered. The chain keeps whatever enabled
// state the last evaluation left it in.
func (m *Manager) Unschedule(client, chainName string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.unscheduleLocked(client, chainName)
}

// unscheduleLocked removes the pair's window and marks it dropped so an
// in-flight EvaluateSchedules pass holding a pointer to it cannot apply
// it anymore. Callers hold m.mu.
func (m *Manager) unscheduleLocked(client, chainName string) bool {
	kept := m.schedules[:0]
	found := false
	for _, s := range m.schedules {
		if s.client == client && s.chain == chainName {
			s.dropped = true
			found = true
			continue
		}
		kept = append(kept, s)
	}
	m.schedules = kept
	return found
}

// Schedules lists registered windows as (client, chain, window) triples,
// sorted for stable output.
func (m *Manager) Schedules() []struct {
	Client, Chain string
	Window        Window
} {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]struct {
		Client, Chain string
		Window        Window
	}, 0, len(m.schedules))
	for _, s := range m.schedules {
		out = append(out, struct {
			Client, Chain string
			Window        Window
		}{s.client, s.chain, s.window})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Client != out[j].Client {
			return out[i].Client < out[j].Client
		}
		return out[i].Chain < out[j].Chain
	})
	return out
}

// EvaluateSchedules applies every window against the manager clock's
// current time, enabling or disabling chains whose desired state changed.
// It returns the number of state transitions performed.
func (m *Manager) EvaluateSchedules() int {
	now := m.clk.Now()
	type action struct {
		sched  *schedule
		rec    *clientRec
		chain  string
		enable bool
	}
	m.mu.Lock()
	scheds := append([]*schedule{}, m.schedules...)
	m.mu.Unlock()
	var actions []action
	for _, s := range scheds {
		want := s.window.Contains(now)
		if s.enabled != nil && *s.enabled == want {
			continue
		}
		rec := m.clients.get(s.client)
		if rec == nil {
			continue
		}
		rec.mu.Lock()
		deployed := rec.deployedOn[s.chain] != ""
		rec.mu.Unlock()
		if !deployed {
			continue
		}
		actions = append(actions, action{sched: s, rec: rec, chain: s.chain, enable: want})
	}

	applied := 0
	for _, a := range actions {
		// Serialise against migrations: holding the client's migration lock
		// pins the chain's placement for the duration of the RPC, so the
		// call can never land on a station the chain is leaving mid-flight.
		// The placement is re-read under the lock — a migration, detach or
		// Unschedule may have raced the snapshot above.
		a.rec.migMu.Lock()
		m.mu.Lock()
		dropped := a.sched.dropped
		m.mu.Unlock()
		a.rec.mu.Lock()
		station := ""
		if _, attached := a.rec.chains[a.chain]; attached && !dropped {
			station = a.rec.deployedOn[a.chain]
		}
		a.rec.mu.Unlock()
		if station == "" {
			a.rec.migMu.Unlock()
			continue
		}
		h, err := m.agentFor(station)
		if err != nil {
			a.rec.migMu.Unlock()
			continue
		}
		method := agent.MethodDisable
		if a.enable {
			method = agent.MethodEnable
		}
		if err := h.call(method, agent.ChainRef{Chain: a.chain}, nil); err != nil {
			a.rec.migMu.Unlock()
			continue
		}
		want := a.enable
		m.mu.Lock()
		a.sched.enabled = &want
		m.mu.Unlock()
		a.rec.migMu.Unlock()
		applied++
	}
	return applied
}

// RunScheduler evaluates schedules every interval on the wall clock until
// stop is closed. Virtual-clock simulations call EvaluateSchedules
// directly after advancing time instead.
func (m *Manager) RunScheduler(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.EvaluateSchedules()
		}
	}
}

// LeastLoadedStation picks the connected station with the lowest reported
// CPU load, excluding the given one; ok is false when no candidate exists.
// It applies the same (stale, CPU, memory, name) ordering as the
// LeastLoadedPlacement policy: a station that has never reported must not
// win with a phantom CPU of zero while stations with known load exist —
// that is exactly how an evacuation used to dump every chain onto an
// unknown-load box.
func (m *Manager) LeastLoadedStation(exclude string) (string, bool) {
	cands := m.StationInfos(exclude)
	if len(cands) == 0 {
		return "", false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if lessLoaded(c, best) {
			best = c
		}
	}
	return best.Station, true
}

// EvacuateStation migrates every chain deployed on station elsewhere:
// chains whose client is attached to another station follow their client;
// orphaned chains go to the least-loaded surviving station. It returns the
// migration reports (one per chain).
func (m *Manager) EvacuateStation(station string) ([]MigrationReport, error) {
	type job struct {
		client string
		rec    *clientRec
		spec   ChainSpec
		seg    int // split-chain segment index (0 = head or unsplit)
		to     string
	}
	var jobs []job
	m.clients.forEach(func(client string, rec *clientRec) {
		rec.mu.Lock()
		for name, at := range rec.deployedOn {
			if at != station {
				continue
			}
			base, seg := agent.ParseSegmentName(name)
			spec, attached := rec.chains[base]
			if !attached {
				continue
			}
			to := rec.station
			// Anchored segments never follow the client; their target is
			// resolved by the placement policy below.
			if to == station || to == "" || seg > 0 {
				to = "" // resolved below, outside the lock
			}
			jobs = append(jobs, job{client: client, rec: rec, spec: spec, seg: seg, to: to})
		}
		rec.mu.Unlock()
	})
	strategy := m.state().strategy

	var reports []MigrationReport
	for _, j := range jobs {
		to := j.to
		if to == "" {
			fallback, ok := m.place(PlacementHint{
				Client: j.client, Chain: j.spec.Name,
				ConfigHashes: chainConfigHashes(j.spec),
				ClientAt:     station,
				MaxRTT:       j.spec.MaxRTT(),
			}, station)
			if !ok {
				return reports, fmt.Errorf("%w: no station to evacuate %s/%s to",
					ErrUnknownStation, j.client, j.spec.Name)
			}
			to = fallback
		}
		if j.seg > 0 {
			// Segment moves own their locking and reporting.
			rep, _ := m.MigrateSegment(j.client, j.spec.Name, j.seg, to)
			reports = append(reports, rep)
			continue
		}
		j.rec.migMu.Lock()
		rep := m.migrateChain(trace.Context{}, j.client, j.spec, station, to, strategy)
		j.rec.mu.Lock()
		if rep.Err == "" {
			j.rec.deployedOn[j.spec.Name] = to
		}
		j.rec.mu.Unlock()
		m.recordMigration(rep)
		j.rec.migMu.Unlock()
		reports = append(reports, rep)
	}
	return reports, nil
}
