// Split-chain segment placement: one chain, several stations.
//
// A chain whose functions carry placement affinities is split into
// contiguous segments, each deployed on its own station and stitched to
// its neighbours over the same shaped tunnels GNFC offload uses. The
// manager owns the split decision and the per-segment lifecycle:
//
//   - SegmentsOf partitions the function list into runs of equal
//     effective affinity (an empty tag inherits its predecessor's).
//   - The head segment (index 0) always sits at the client's current
//     station and is the only segment roaming migrates: a handoff moves
//     the head exactly like a whole-chain migration, then re-splices the
//     downstream segment's tunnel leg (RetargetSegment) at the new
//     station. Anchored segments never move on handoff.
//   - "aggregate" segments anchor on the aggregation hub — the edge
//     station minimising its worst-case RTT to every other edge station —
//     and "cloud-ok" segments prefer a GNFC cloud site.
//
// Deployment naming: segment 0 reuses the chain name itself (so every
// head-of-chain code path — schedules, standby bookkeeping, placement
// records — keeps working unchanged), segment i>0 deploys as "name#i".
//
// Lock ordering is unchanged from shards.go: rec.migMu > shard.mu >
// rec.mu, and rec.mu stays a leaf — segment planning reads the control
// snapshot lock-free and all RPCs happen outside rec.mu.
package manager

import (
	"fmt"
	"sort"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/trace"
)

// Segment placement affinities (agent.NFSpec.Affinity).
const (
	// AffinityNearClient pins a function to the client's current station;
	// it roams with the client on every handoff.
	AffinityNearClient = "near-client"
	// AffinityAggregate anchors a function on a stable aggregation
	// station; it stays put while the client roams.
	AffinityAggregate = "aggregate"
	// AffinityCloudOK permits a GNFC cloud site (falling back to the
	// aggregation hub when no cloud is connected).
	AffinityCloudOK = "cloud-ok"
)

// ValidAffinity reports whether a is a known affinity tag ("" = follow
// the chain).
func ValidAffinity(a string) bool {
	switch a {
	case "", AffinityNearClient, AffinityAggregate, AffinityCloudOK:
		return true
	}
	return false
}

// ChainSegment is one contiguous run of a split chain's functions,
// destined for a single station.
type ChainSegment struct {
	// Affinity is the run's effective placement tag.
	Affinity string
	// Functions is the run's slice of the chain's function list.
	Functions []agent.NFSpec
}

// SegmentsOf partitions a chain's functions into contiguous segments by
// effective affinity: an empty tag inherits the previous function's tag,
// leading empty tags inherit the first non-empty one, and a chain whose
// functions are all untagged is a single segment (never split).
func SegmentsOf(spec ChainSpec) []ChainSegment {
	fns := spec.Functions
	if len(fns) == 0 {
		return nil
	}
	eff := make([]string, len(fns))
	cur := ""
	for i, f := range fns {
		if f.Affinity != "" {
			cur = f.Affinity
		}
		eff[i] = cur
	}
	if eff[0] == "" {
		first := ""
		for _, e := range eff {
			if e != "" {
				first = e
				break
			}
		}
		if first == "" {
			return []ChainSegment{{Functions: fns}}
		}
		for i := range eff {
			if eff[i] != "" {
				break
			}
			eff[i] = first
		}
	}
	var segs []ChainSegment
	for i, f := range fns {
		if i == 0 || eff[i] != eff[i-1] {
			segs = append(segs, ChainSegment{Affinity: eff[i]})
		}
		s := &segs[len(segs)-1]
		s.Functions = append(s.Functions, f)
	}
	return segs
}

// validateSplit rejects split layouts the runtime cannot honour: unknown
// affinity values, and near-client functions *behind* an anchored
// segment — the head is the only segment roaming chases, so a trailing
// near-client run would drift away from the client forever.
func validateSplit(spec ChainSpec, segs []ChainSegment) error {
	for _, f := range spec.Functions {
		if !ValidAffinity(f.Affinity) {
			return fmt.Errorf("manager: chain %s: function %s has unknown affinity %q", spec.Name, f.Name, f.Affinity)
		}
	}
	for i, sg := range segs {
		if i > 0 && sg.Affinity == AffinityNearClient {
			return fmt.Errorf("manager: chain %s: near-client functions must precede anchored ones (segment %d)", spec.Name, i)
		}
	}
	return nil
}

// ValidateSegments checks a chain's affinity layout without attaching
// it: unknown tags and near-client-behind-anchor layouts are rejected
// with the same errors AttachChain would raise. The declarative spec
// layer validates documents with it before install.
func ValidateSegments(spec ChainSpec) error {
	return validateSplit(spec, SegmentsOf(spec))
}

// SetTunnelProvisioner installs the callback the manager uses to make
// sure a shaped tunnel exists between two stations before steering an
// inter-segment leg over it. The core layer wires its tunnel registry
// here; without a provisioner the manager assumes tunnels pre-exist (the
// agent's deploy fails loudly if one doesn't).
func (m *Manager) SetTunnelProvisioner(fn func(a, b string) error) {
	m.mutate(func(c *controlState) { c.tunneler = fn })
}

// ensureTunnel provisions the a<->b tunnel when a provisioner is wired;
// same-station and half-empty pairs are no-ops.
func (m *Manager) ensureTunnel(a, b string) error {
	if a == "" || b == "" || a == b {
		return nil
	}
	fn := m.state().tunneler
	if fn == nil {
		return nil
	}
	return fn(a, b)
}

// aggregationHub picks the station anchoring "aggregate" segments: the
// non-cloud station minimising its worst-case RTT to every other
// non-cloud station over the topology graph, ties broken by name. The
// choice is client-independent, so every chain (and every revival after
// a failover) converges on the same anchor. Without a topology graph the
// lexicographically first edge station wins — still deterministic.
func aggregationHub(st *controlState) (string, bool) {
	var edges []string
	for s, h := range st.agents {
		if !h.Cloud {
			edges = append(edges, s)
		}
	}
	if len(edges) == 0 {
		return "", false
	}
	sort.Strings(edges)
	if st.topo == nil {
		return edges[0], true
	}
	best, bestWorst := "", time.Duration(-1)
	for _, c := range edges {
		worst, feasible := time.Duration(0), true
		for _, s := range edges {
			if s == c {
				continue
			}
			rtt, ok := st.topo.RTT(topology.StationID(c), topology.StationID(s))
			if !ok {
				feasible = false
				break
			}
			if rtt > worst {
				worst = rtt
			}
		}
		if !feasible {
			continue
		}
		if bestWorst < 0 || worst < bestWorst {
			best, bestWorst = c, worst
		}
	}
	if best == "" {
		return edges[0], true // disconnected graph: still deterministic
	}
	return best, true
}

// cloudAnchor picks the site hosting "cloud-ok" segments (first cloud
// agent by name); ok is false when no cloud site is connected.
func cloudAnchor(st *controlState) (string, bool) {
	var clouds []string
	for s, h := range st.agents {
		if h.Cloud {
			clouds = append(clouds, s)
		}
	}
	if len(clouds) == 0 {
		return "", false
	}
	sort.Strings(clouds)
	return clouds[0], true
}

// segmentStations maps each segment to its hosting station for a client
// currently at clientAt. The head is always client-local; anchored
// segments resolve against the live agent registry.
func (m *Manager) segmentStations(segs []ChainSegment, clientAt string) ([]string, error) {
	st := m.state()
	out := make([]string, len(segs))
	for i, sg := range segs {
		if i == 0 || sg.Affinity == "" || sg.Affinity == AffinityNearClient {
			out[i] = clientAt
			continue
		}
		if sg.Affinity == AffinityCloudOK {
			if c, ok := cloudAnchor(st); ok {
				out[i] = c
				continue
			}
		}
		hub, ok := aggregationHub(st)
		if !ok {
			return nil, fmt.Errorf("%w: no station to anchor segment %d", ErrUnknownStation, i)
		}
		out[i] = hub
	}
	return out, nil
}

// SegmentPlan reports a split chain's desired station per segment for the
// client's current position. ok is false when the chain is not split or
// the client is not attached anywhere; the reconciler uses this to tell
// per-segment drift from legitimate placement.
func (m *Manager) SegmentPlan(client string, spec ChainSpec) ([]string, bool) {
	segs := SegmentsOf(spec)
	if len(segs) < 2 {
		return nil, false
	}
	rec := m.clients.get(client)
	if rec == nil {
		return nil, false
	}
	rec.mu.Lock()
	at := rec.station
	rec.mu.Unlock()
	if at == "" {
		return nil, false
	}
	stations, err := m.segmentStations(segs, at)
	if err != nil {
		return nil, false
	}
	return stations, true
}

// pathRTT sums the multi-leg round-trip of a split chain: the access leg
// from the client's station to the head plus every inter-segment leg.
// ok is false when any leg has no path in the graph.
func pathRTT(topo *topology.Graph, clientAt string, stations []string) (time.Duration, bool) {
	if topo == nil {
		return 0, false
	}
	total := time.Duration(0)
	prev := clientAt
	for _, s := range stations {
		if s != prev {
			rtt, ok := topo.RTT(topology.StationID(prev), topology.StationID(s))
			if !ok {
				return 0, false
			}
			total += rtt
		}
		prev = s
	}
	return total, true
}

// attachSegments deploys a split chain tail→head across its segment
// stations: each segment's steering may reference the next one (a local
// next leg wires port-to-port against the already-present downstream
// deployment), so the head — the segment that starts diverting client
// traffic — lands last. Any failure rolls back every segment already
// deployed.
func (m *Manager) attachSegments(client string, rec *clientRec, spec ChainSpec, segs []ChainSegment, station string, mac packet.MAC, ip packet.IP) error {
	stations, err := m.segmentStations(segs, station)
	if err != nil {
		return err
	}
	// Enforce the chain's QoS budget over the full multi-leg path, not
	// just the access leg: a split that cannot meet its own budget is an
	// operator error, surfaced at attach time rather than debugged off a
	// silent RTT violation.
	if budget := spec.MaxRTT(); budget > 0 {
		if topo := m.state().topo; topo != nil {
			if rtt, ok := pathRTT(topo, station, stations); ok && rtt > budget {
				return fmt.Errorf("manager: chain %s: multi-leg path RTT %s exceeds budget %s (stations %v)",
					spec.Name, rtt, budget, stations)
			}
		}
	}
	for i := 0; i+1 < len(stations); i++ {
		if err := m.ensureTunnel(stations[i], stations[i+1]); err != nil {
			return err
		}
	}

	n := len(segs)
	type done struct{ name, at string }
	var deployed []done
	rollback := func() {
		for _, d := range deployed {
			if h, err := m.agentFor(d.at); err == nil {
				h.call(agent.MethodRemove, agent.ChainRef{Chain: d.name}, nil)
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		prevVia, nextVia := "", ""
		if i > 0 {
			prevVia = stations[i-1]
		}
		if i < n-1 {
			nextVia = stations[i+1]
		}
		dep := agent.DeploySpec{
			Chain:     agent.SegmentDeployName(spec.Name, i),
			Client:    client,
			ClientMAC: mac,
			ClientIP:  ip,
			Functions: segs[i].Functions,
			Enabled:   true,
			SegIndex:  i,
			SegCount:  n,
			PrevVia:   prevVia,
			NextVia:   nextVia,
		}
		h, err := m.agentFor(stations[i])
		if err != nil {
			rollback()
			return err
		}
		if err := h.call(agent.MethodDeploy, dep, nil); err != nil {
			rollback()
			return err
		}
		deployed = append(deployed, done{dep.Chain, stations[i]})
	}

	rec.mu.Lock()
	rec.chains[spec.Name] = spec
	for i, at := range stations {
		rec.deployedOn[agent.SegmentDeployName(spec.Name, i)] = at
	}
	rec.mu.Unlock()
	m.journal.Append(trace.Event{
		Type: trace.EventAttach, Subject: spec.Name, Station: stations[0],
		Detail: fmt.Sprintf("client=%s segments=%v", client, stations),
	})
	return nil
}

// MigrateSegment moves one segment of a split chain to another station,
// preserving its state by stop-and-copy when the source is reachable and
// re-splicing both neighbour legs at the new station. Segment 0 (the
// head) delegates to MigrateChain, which owns the head's
// migration-strategy machinery. to == "" re-derives the segment's anchor
// from the current topology (how failover and the reconciler call it).
func (m *Manager) MigrateSegment(client, chainName string, seg int, to string) (MigrationReport, error) {
	if seg == 0 {
		return m.MigrateChain(client, chainName, to)
	}
	rec := m.clients.get(client)
	if rec == nil {
		return MigrationReport{}, fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	rec.mu.Lock()
	spec, ok := rec.chains[chainName]
	clientAt := rec.station
	rec.mu.Unlock()
	if !ok {
		return MigrationReport{}, fmt.Errorf("%w: %s", ErrUnknownChain, chainName)
	}
	segs := SegmentsOf(spec)
	if len(segs) < 2 || seg < 0 || seg >= len(segs) {
		return MigrationReport{}, fmt.Errorf("manager: %s has no segment %d", chainName, seg)
	}
	if to == "" {
		stations, err := m.segmentStations(segs, clientAt)
		if err != nil {
			return MigrationReport{}, err
		}
		to = stations[seg]
	}

	rec.migMu.Lock()
	defer rec.migMu.Unlock()
	depName := agent.SegmentDeployName(chainName, seg)
	rec.mu.Lock()
	from := rec.deployedOn[depName]
	prevAt := rec.deployedOn[agent.SegmentDeployName(chainName, seg-1)]
	nextAt := ""
	if seg+1 < len(segs) {
		nextAt = rec.deployedOn[agent.SegmentDeployName(chainName, seg+1)]
	}
	rec.mu.Unlock()
	if from == to {
		return MigrationReport{Client: client, Chain: depName, From: from, To: to}, nil
	}

	rep := m.moveSegment(rec, client, segs, seg, depName, from, to, prevAt, nextAt)
	rec.mu.Lock()
	if rep.Err == "" {
		rec.deployedOn[depName] = to
	}
	rec.mu.Unlock()
	m.recordMigration(rep)
	if rep.Err != "" {
		return rep, fmt.Errorf("manager: segment migration failed: %s", rep.Err)
	}
	return rep, nil
}

// moveSegment is the mechanism under MigrateSegment and failover's
// segment revival: deploy the segment at the target (stop-and-copy from
// a live source, cold otherwise), splice the neighbour legs onto the new
// station, then remove the source copy. from == "" (or an unreachable
// source) degrades to a cold deploy — failover's case, where the state
// died with the station.
func (m *Manager) moveSegment(rec *clientRec, client string, segs []ChainSegment, seg int, depName, from, to, prevAt, nextAt string) MigrationReport {
	rep := MigrationReport{
		Client: client, Chain: depName, From: from, To: to,
		Strategy: StrategyStateful,
	}
	fail := func(err error) MigrationReport {
		rep.Err = err.Error()
		return rep
	}
	total := clock.NewStopwatch(m.clk)
	if err := m.ensureTunnel(prevAt, to); err != nil {
		return fail(err)
	}
	if err := m.ensureTunnel(to, nextAt); err != nil {
		return fail(err)
	}
	target, err := m.agentFor(to)
	if err != nil {
		return fail(err)
	}
	var source *AgentHandle
	if from != "" {
		if source, err = m.agentFor(from); err != nil {
			source = nil // source station gone: degrade to cold deploy
		}
	}
	rec.mu.Lock()
	mac, ip := rec.mac, rec.ip
	rec.mu.Unlock()

	deploy := agent.DeploySpec{
		Chain:     depName,
		Client:    client,
		ClientMAC: mac,
		ClientIP:  ip,
		Functions: segs[seg].Functions,
		SegIndex:  seg,
		SegCount:  len(segs),
		PrevVia:   prevAt,
		NextVia:   nextAt,
	}
	target.call(agent.MethodPrefetch, agent.PrefetchSpec{Images: imagesOf(segs[seg].Functions)}, nil)

	chain := agent.ChainRef{Chain: depName}
	if source != nil {
		if err := target.call(agent.MethodDeploy, deploy, nil); err != nil {
			return fail(err)
		}
		down := clock.NewStopwatch(m.clk)
		if err := source.call(agent.MethodDisable, chain, nil); err != nil {
			target.call(agent.MethodRemove, chain, nil)
			return fail(err)
		}
		var ckpt agent.CheckpointResult
		if err := source.call(agent.MethodCheckpoint, chain, &ckpt); err != nil {
			source.call(agent.MethodEnable, chain, nil)
			target.call(agent.MethodRemove, chain, nil)
			return fail(err)
		}
		rep.StateBytes = len(ckpt.State)
		if err := target.call(agent.MethodRestore, agent.RestoreSpec{Chain: depName, State: ckpt.State}, nil); err != nil {
			source.call(agent.MethodEnable, chain, nil)
			target.call(agent.MethodRemove, chain, nil)
			return fail(err)
		}
		if err := target.call(agent.MethodEnable, chain, nil); err != nil {
			source.call(agent.MethodEnable, chain, nil)
			target.call(agent.MethodRemove, chain, nil)
			return fail(err)
		}
		rep.Downtime = down.Elapsed()
	} else {
		rep.Strategy = StrategyCold
		deploy.Enabled = true
		down := clock.NewStopwatch(m.clk)
		if err := target.call(agent.MethodDeploy, deploy, nil); err != nil {
			return fail(err)
		}
		rep.Downtime = down.Elapsed()
	}

	// Splice the neighbour legs onto the new station. Until both retargets
	// land, in-flight frames still ride toward the old station — with a
	// live source those arrive at a chain being removed and are dropped,
	// the same transient every stop-and-copy migration has.
	base, _ := agent.ParseSegmentName(depName)
	if err := m.spliceNeighbors(base, seg, to, prevAt, nextAt); err != nil {
		return fail(err)
	}
	if source != nil {
		source.call(agent.MethodRemove, chain, nil)
	}
	rep.Total = total.Elapsed()
	return rep
}

// spliceNeighbors re-points the segment's neighbour deployments at its
// new station: the upstream segment's next leg and the downstream
// segment's previous leg.
func (m *Manager) spliceNeighbors(base string, seg int, to, prevAt, nextAt string) error {
	if prevAt != "" {
		h, err := m.agentFor(prevAt)
		if err != nil {
			return err
		}
		nv := to
		if err := h.call(agent.MethodRetarget, agent.RetargetSpec{
			Chain: agent.SegmentDeployName(base, seg-1), NextVia: &nv,
		}, nil); err != nil {
			return err
		}
	}
	if nextAt != "" {
		h, err := m.agentFor(nextAt)
		if err != nil {
			return err
		}
		pv := to
		if err := h.call(agent.MethodRetarget, agent.RetargetSpec{
			Chain: agent.SegmentDeployName(base, seg+1), PrevVia: &pv,
		}, nil); err != nil {
			return err
		}
	}
	return nil
}

// reviveSegment cold-deploys one anchored segment lost with its station
// and splices it back between its neighbours. The anchor is re-derived
// over the surviving agents, so the segment lands wherever the hub (or
// cloud) role now falls.
func (m *Manager) reviveSegment(failed, client string, rec *clientRec, spec ChainSpec, seg int) FailoverReport {
	depName := agent.SegmentDeployName(spec.Name, seg)
	rep := FailoverReport{Station: failed, Client: client, Chain: depName}
	watch := clock.NewStopwatch(m.clk)
	segs := SegmentsOf(spec)
	if seg >= len(segs) {
		rep.Err = fmt.Sprintf("no segment %d in %s", seg, spec.Name)
		return rep
	}
	rec.mu.Lock()
	clientAt := rec.station
	rec.mu.Unlock()
	stations, err := m.segmentStations(segs, clientAt)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	to := stations[seg]

	rec.migMu.Lock()
	defer rec.migMu.Unlock()
	rec.mu.Lock()
	at := rec.deployedOn[depName]
	prevAt := rec.deployedOn[agent.SegmentDeployName(spec.Name, seg-1)]
	nextAt := ""
	if seg+1 < len(segs) {
		nextAt = rec.deployedOn[agent.SegmentDeployName(spec.Name, seg+1)]
	}
	rec.mu.Unlock()
	// The segment may have been reconciled meanwhile; never double-deploy.
	if at != failed {
		rep.To, rep.Recovered = at, watch.Elapsed()
		return rep
	}
	mig := m.moveSegment(rec, client, segs, seg, depName, "", to, prevAt, nextAt)
	if mig.Err != "" {
		rep.Err = mig.Err
		return rep
	}
	rec.mu.Lock()
	rec.deployedOn[depName] = to
	rec.mu.Unlock()
	rep.To, rep.Recovered = to, watch.Elapsed()
	return rep
}

// imagesOf lists the repository images a function list needs.
func imagesOf(fns []agent.NFSpec) []string {
	imgs := make([]string, 0, len(fns))
	for _, f := range fns {
		imgs = append(imgs, agent.ImageForKind(f.Kind))
	}
	return imgs
}
