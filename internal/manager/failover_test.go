package manager_test

import (
	"encoding/json"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/manager"
	"gnf/internal/metrics"
	"gnf/internal/packet"
	"gnf/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.After(d)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal("timeout: " + msg)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

var fwChain = manager.ChainSpec{
	Name:      "fw",
	Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw0"}},
}

func TestFailoverRecoversChainsOnConnectionDrop(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0", manager.WithFailover(0))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	agA, linkA := fakeStation(t, mgr, "st-a")
	agB, _ := fakeStation(t, mgr, "st-b")
	agC, _ := fakeStation(t, mgr, "st-c")
	waitFor(t, 2*time.Second, func() bool { return len(mgr.Agents()) == 3 }, "3 agents")

	mgr.RegisterClient("phone")
	agA.AttachClient("phone", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}, 1)
	waitFor(t, 2*time.Second, func() bool {
		st, ok := mgr.ClientStation("phone")
		return ok && st == "st-a"
	}, "client at st-a")
	if err := mgr.AttachChain("phone", fwChain); err != nil {
		t.Fatal(err)
	}
	if got := agA.Chains(); len(got) != 1 {
		t.Fatalf("st-a chains = %v", got)
	}

	// Station st-a dies: its agent connection drops.
	linkA.Close()
	waitFor(t, 2*time.Second, func() bool { return len(mgr.Failovers()) == 1 }, "failover report")
	mgr.WaitIdle()

	rep := mgr.Failovers()[0]
	if rep.Err != "" {
		t.Fatalf("failover error: %s", rep.Err)
	}
	if rep.Station != "st-a" || rep.Client != "phone" || rep.Chain != "fw" {
		t.Fatalf("report = %+v", rep)
	}
	if rep.To != "st-b" && rep.To != "st-c" {
		t.Fatalf("revived on %q", rep.To)
	}
	revived := agB
	if rep.To == "st-c" {
		revived = agC
	}
	if got := revived.Chains(); len(got) != 1 || got[0] != "fw" {
		t.Fatalf("chains on %s = %v", rep.To, got)
	}
	if failed := mgr.FailedStations(); len(failed) != 1 || failed[0] != "st-a" {
		t.Fatalf("failed stations = %v", failed)
	}
}

func TestFailoverPrefersClientStation(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0", manager.WithFailover(0))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	agA, _ := fakeStation(t, mgr, "st-a")
	_, linkB := fakeStation(t, mgr, "st-b")
	fakeStation(t, mgr, "st-c")
	waitFor(t, 2*time.Second, func() bool { return len(mgr.Agents()) == 3 }, "3 agents")

	mgr.RegisterClient("phone")
	agA.AttachClient("phone", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}, 1)
	waitFor(t, 2*time.Second, func() bool {
		_, ok := mgr.ClientStation("phone")
		return ok
	}, "client attached")
	if err := mgr.AttachChain("phone", fwChain); err != nil {
		t.Fatal(err)
	}
	// Park the chain away from the client, then kill its host.
	if _, err := mgr.MigrateChain("phone", "fw", "st-b"); err != nil {
		t.Fatal(err)
	}
	linkB.Close()
	waitFor(t, 2*time.Second, func() bool { return len(mgr.Failovers()) == 1 }, "failover report")
	mgr.WaitIdle()

	rep := mgr.Failovers()[0]
	if rep.Err != "" || rep.To != "st-a" {
		t.Fatalf("expected revival on the client's station st-a, got %+v", rep)
	}
	if got := agA.Chains(); len(got) != 1 || got[0] != "fw" {
		t.Fatalf("st-a chains = %v", got)
	}
}

func TestFailoverSilentStationByHeartbeatTimeout(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0", manager.WithFailover(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	fakeStation(t, mgr, "st-b")

	// A hand-rolled "ghost" station: registers, accepts a deploy, sends a
	// single heartbeat, then goes silent without closing the connection.
	peer, err := wire.Dial(mgr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	peer.Handle(agent.MethodDeploy, func(json.RawMessage) (any, error) {
		return &agent.DeployResult{Chain: "fw"}, nil
	})
	peer.Handle(agent.MethodPrefetch, func(json.RawMessage) (any, error) { return nil, nil })
	go peer.Run()
	defer peer.Close()
	if err := peer.Call(agent.MethodRegister, agent.RegisterSpec{Station: "ghost"}, nil); err != nil {
		t.Fatal(err)
	}
	peer.Notify(agent.MethodClientEvent, agent.ClientEvent{Station: "ghost", Client: "phone", Connected: true})
	peer.Notify(agent.MethodReport, agent.Report{Station: "ghost", Usage: metrics.ResourceUsage{CPUPercent: 1}})

	mgr.RegisterClient("phone")
	waitFor(t, 2*time.Second, func() bool {
		st, ok := mgr.ClientStation("phone")
		return ok && st == "ghost"
	}, "client at ghost")
	mgr.WaitIdle()
	if err := mgr.AttachChain("phone", fwChain); err != nil {
		t.Fatal(err)
	}

	// Nothing is failed while the heartbeat is fresh.
	if reps := mgr.CheckFailures(); len(reps) != 0 {
		t.Fatalf("premature failover: %+v", reps)
	}
	time.Sleep(120 * time.Millisecond)
	reps := mgr.CheckFailures()
	if len(reps) != 1 {
		t.Fatalf("reports = %+v", reps)
	}
	if reps[0].To != "st-b" || reps[0].Err != "" {
		t.Fatalf("report = %+v", reps[0])
	}
	if failed := mgr.FailedStations(); len(failed) != 1 || failed[0] != "ghost" {
		t.Fatalf("failed = %v", failed)
	}
}

func TestFailoverNoSurvivorReportsError(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0", manager.WithFailover(0))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	agA, linkA := fakeStation(t, mgr, "st-a")
	waitFor(t, 2*time.Second, func() bool { return len(mgr.Agents()) == 1 }, "agent up")

	mgr.RegisterClient("phone")
	agA.AttachClient("phone", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}, 1)
	waitFor(t, 2*time.Second, func() bool {
		_, ok := mgr.ClientStation("phone")
		return ok
	}, "client attached")
	if err := mgr.AttachChain("phone", fwChain); err != nil {
		t.Fatal(err)
	}
	linkA.Close()
	waitFor(t, 2*time.Second, func() bool { return len(mgr.Failovers()) == 1 }, "failover attempted")
	mgr.WaitIdle()
	if rep := mgr.Failovers()[0]; rep.Err == "" {
		t.Fatalf("expected error with no survivors, got %+v", rep)
	}
}

func TestFailedStationClearsOnRejoin(t *testing.T) {
	mgr, err := manager.New(clock.System(), "127.0.0.1:0", manager.WithFailover(0))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	agA, linkA := fakeStation(t, mgr, "st-a")
	fakeStation(t, mgr, "st-b")
	waitFor(t, 2*time.Second, func() bool { return len(mgr.Agents()) == 2 }, "agents up")

	mgr.RegisterClient("phone")
	agA.AttachClient("phone", packet.MAC{2, 0, 0, 0, 0, 1}, packet.IP{10, 0, 0, 1}, 1)
	waitFor(t, 2*time.Second, func() bool {
		_, ok := mgr.ClientStation("phone")
		return ok
	}, "client attached")
	if err := mgr.AttachChain("phone", fwChain); err != nil {
		t.Fatal(err)
	}
	linkA.Close()
	waitFor(t, 2*time.Second, func() bool { return len(mgr.FailedStations()) == 1 }, "declared failed")
	mgr.WaitIdle()

	// The station comes back: a fresh link re-registers the same name.
	if _, err := agent.Connect(agA, mgr.Addr(), 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(mgr.FailedStations()) == 0 }, "failure cleared")
}
