// Station failover: the Manager's health monitoring (§3) exists so the
// provider can react when part of the infrastructure misbehaves. This file
// closes that loop — when a station's agent connection drops or its
// heartbeats go silent, the Manager declares the station failed and
// re-places every chain it hosted, preferring each client's current
// station and falling back to the placement policy. Recovery is a cold
// deploy: the failed station's NF state is gone by definition.
package manager

import (
	"fmt"
	"sort"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/trace"
)

// FailoverReport records the recovery of one chain from a failed station.
type FailoverReport struct {
	Station   string        `json:"station"` // the failed station
	Client    string        `json:"client"`
	Chain     string        `json:"chain"`
	To        string        `json:"to"` // where the chain was revived
	Recovered time.Duration `json:"recovered"`
	Err       string        `json:"err,omitempty"`
}

// WithFailover arms automatic failover at construction: heartbeats older
// than timeout mark a station failed, and dropped agent connections
// trigger immediate re-placement. timeout <= 0 leaves only the
// connection-drop trigger.
func WithFailover(timeout time.Duration) Option {
	return func(m *Manager) {
		m.mutate(func(c *controlState) {
			c.failoverTimeout = timeout
			c.failoverAuto = true
		})
	}
}

// EnableFailover arms automatic failover at runtime.
func (m *Manager) EnableFailover(timeout time.Duration) {
	m.mutate(func(c *controlState) {
		c.failoverTimeout = timeout
		c.failoverAuto = true
	})
}

// Failovers returns a copy of completed failover reports.
func (m *Manager) Failovers() []FailoverReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]FailoverReport{}, m.failovers...)
}

// FailedStations lists stations currently declared dead, sorted.
func (m *Manager) FailedStations() []string {
	failed := m.state().failed
	out := make([]string, 0, len(failed))
	for s := range failed {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// CheckFailures scans for failed stations and re-places every chain they
// hosted. A station is failed when chains are recorded on it but no agent
// connection exists, or when its last heartbeat is older than the failover
// timeout (in which case its connection is also torn down). It returns the
// reports for this invocation.
func (m *Manager) CheckFailures() []FailoverReport {
	now := m.clk.Now()

	st := m.state()
	timeout := st.failoverTimeout
	// Stations hosting at least one chain.
	hosting := make(map[string]bool)
	m.clients.forEach(func(_ string, rec *clientRec) {
		rec.mu.Lock()
		for _, at := range rec.deployedOn {
			hosting[at] = true
		}
		rec.mu.Unlock()
	})
	var silent []*AgentHandle
	if timeout > 0 {
		for _, h := range st.agents {
			h.mu.Lock()
			seen := h.lastSeen
			h.mu.Unlock()
			if !seen.IsZero() && now.Sub(seen) > timeout {
				silent = append(silent, h)
			}
		}
	}
	var dead []string
	m.mutate(func(c *controlState) {
		for station := range hosting {
			if _, alive := c.agents[station]; !alive && !c.failed[station] {
				dead = append(dead, station)
				c.failed[station] = true
			}
		}
	})

	// Silent agents: cut the connection (OnClose removes them from the
	// registry) and treat them as dead below.
	for _, h := range silent {
		h.peer.Close()
		m.mutate(func(c *controlState) {
			if cur, ok := c.agents[h.Station]; ok && cur == h {
				delete(c.agents, h.Station)
			}
			if !c.failed[h.Station] && hosting[h.Station] {
				dead = append(dead, h.Station)
				c.failed[h.Station] = true
			}
		})
	}

	var reports []FailoverReport
	for _, st := range dead {
		reports = append(reports, m.failStation(st)...)
	}
	return reports
}

// failStation re-places every chain deployed on the dead station.
func (m *Manager) failStation(station string) []FailoverReport {
	type job struct {
		client string
		rec    *clientRec
		spec   ChainSpec
		seg    int // split-chain segment index (0 = head or unsplit)
	}
	type detour struct {
		client, at string
	}
	var jobs []job
	var stale []detour
	m.clients.forEach(func(client string, rec *clientRec) {
		rec.mu.Lock()
		// A dead cloud site ends the offload: chains return to the edge
		// (below) and the detour toward the dead site must go.
		if rec.offload == station {
			rec.offload = ""
			if rec.steerOn != "" {
				stale = append(stale, detour{client: client, at: rec.steerOn})
				rec.steerOn = ""
			}
		}
		for name, at := range rec.deployedOn {
			if at != station {
				continue
			}
			// Deployment names carry the segment index for split chains;
			// the spec lives under the base chain name.
			base, seg := agent.ParseSegmentName(name)
			spec, attached := rec.chains[base]
			if !attached {
				continue
			}
			jobs = append(jobs, job{client: client, rec: rec, spec: spec, seg: seg})
		}
		rec.mu.Unlock()
	})

	for _, d := range stale {
		if h, err := m.agentFor(d.at); err == nil {
			h.call(agent.MethodUnsteer, agent.UnsteerSpec{Client: d.client}, nil)
		}
	}

	var reports []FailoverReport
	for _, j := range jobs {
		var rep FailoverReport
		if j.seg > 0 {
			rep = m.reviveSegment(station, j.client, j.rec, j.spec, j.seg)
		} else {
			rep = m.reviveChain(station, j.client, j.rec, j.spec)
		}
		m.mu.Lock()
		m.failovers = append(m.failovers, rep)
		m.mu.Unlock()
		m.journal.Append(trace.Event{
			Type: trace.EventFailover, Subject: rep.Chain, Station: rep.To,
			Detail: fmt.Sprintf("client=%s lost=%s recovered=%s", rep.Client, rep.Station, rep.Recovered),
			Err:    rep.Err,
		})
		reports = append(reports, rep)
	}
	return reports
}

// reviveChain cold-deploys one chain lost with its station.
func (m *Manager) reviveChain(failed, client string, rec *clientRec, spec ChainSpec) FailoverReport {
	rep := FailoverReport{Station: failed, Client: client, Chain: spec.Name}
	watch := clock.NewStopwatch(m.clk)

	rec.mu.Lock()
	prefer := rec.station
	rec.mu.Unlock()
	clientAt := prefer // the dead station is still the RTT reference point
	if prefer == failed {
		prefer = ""
	}
	to, ok := m.place(PlacementHint{
		Client: client, Chain: spec.Name, Prefer: prefer,
		ConfigHashes: chainConfigHashes(spec),
		ClientAt:     clientAt,
		MaxRTT:       spec.MaxRTT(),
	}, failed)
	if !ok {
		rep.Err = fmt.Sprintf("no surviving station for %s/%s", client, spec.Name)
		return rep
	}
	rep.To = to

	rec.migMu.Lock()
	defer rec.migMu.Unlock()
	// The client may have been reconciled meanwhile; never double-deploy.
	rec.mu.Lock()
	at := rec.deployedOn[spec.Name]
	rec.mu.Unlock()
	if at != failed {
		rep.To, rep.Recovered = at, watch.Elapsed()
		return rep
	}

	h, err := m.agentFor(to)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	deploy := agent.DeploySpec{
		Chain:     spec.Name,
		Client:    client,
		Functions: spec.Functions,
		Enabled:   true,
	}
	// A split chain's head revives head-only: the anchored segments
	// survived the failure, so only the access-side functions redeploy and
	// the downstream leg is re-spliced at the revival station.
	segs := SegmentsOf(spec)
	seg1At := ""
	if len(segs) > 1 {
		deploy.Functions = segs[0].Functions
		deploy.SegIndex, deploy.SegCount = 0, len(segs)
		rec.mu.Lock()
		seg1At = rec.deployedOn[agent.SegmentDeployName(spec.Name, 1)]
		deploy.ClientMAC, deploy.ClientIP = rec.mac, rec.ip
		rec.mu.Unlock()
		deploy.NextVia = seg1At
		if err := m.ensureTunnel(to, seg1At); err != nil {
			rep.Err = err.Error()
			return rep
		}
	}
	err = h.call(agent.MethodDeploy, deploy, nil)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	if len(segs) > 1 && seg1At != "" {
		pv := to
		if sh, serr := m.agentFor(seg1At); serr == nil {
			sh.call(agent.MethodRetarget, agent.RetargetSpec{
				Chain: agent.SegmentDeployName(spec.Name, 1), PrevVia: &pv,
			}, nil)
		}
	}
	rec.mu.Lock()
	rec.deployedOn[spec.Name] = to
	rec.mu.Unlock()
	rep.Recovered = watch.Elapsed()
	return rep
}

// RunFailureDetector periodically invokes CheckFailures until stop closes.
// Pair it with WithFailover to also catch silent (non-crashed but
// unreachable) stations.
func (m *Manager) RunFailureDetector(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.CheckFailures()
		}
	}
}
