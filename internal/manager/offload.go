// GNFC offload orchestration (reference [2] of the demo paper): the
// Manager can move a client's entire chain set from its edge station to a
// cloud site. Traffic then detours edge→cloud→backhaul through a
// provisioned tunnel. The payoff, quantified in experiment E8: once
// offloaded, roaming costs only a steering update — the chains never move
// again — at the price of a WAN round-trip on every packet.
package manager

import (
	"errors"
	"fmt"
	"sort"

	"gnf/internal/agent"
	"gnf/internal/clock"
)

// Offload errors.
var (
	ErrNotCloud     = errors.New("manager: offload target is not a cloud site")
	ErrOffloaded    = errors.New("manager: client already offloaded")
	ErrNotOffloaded = errors.New("manager: client is not offloaded")
)

// OffloadReport records one client offload or recall.
type OffloadReport struct {
	Client string            `json:"client"`
	Site   string            `json:"site"`
	Chains []MigrationReport `json:"chains"`
	// Recall is true when this reports a cloud→edge move.
	Recall bool `json:"recall,omitempty"`
}

// Offloaded reports the cloud site hosting the client's chains ("" when
// the client is served at the edge).
func (m *Manager) Offloaded(client string) string {
	rec := m.clients.get(client)
	if rec == nil {
		return ""
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.offload
}

// OffloadClient moves every chain of the client to the cloud site and
// detours the client's traffic through the tunnel. Chains move
// make-before-break with state transfer: each is deployed (disabled) on
// the site, frozen at the edge, checkpointed, restored and enabled; the
// detour flips once every chain is ready, and only then are the edge
// copies removed.
func (m *Manager) OffloadClient(client, site string) (OffloadReport, error) {
	rep := OffloadReport{Client: client, Site: site}

	rec := m.clients.get(client)
	if rec == nil {
		return rep, fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}

	rec.migMu.Lock()
	defer rec.migMu.Unlock()

	rec.mu.Lock()
	station := rec.station
	site0 := rec.offload
	specs := sortedChains(rec)
	rec.mu.Unlock()
	if site0 != "" {
		return rep, fmt.Errorf("%w: %s on %s", ErrOffloaded, client, site0)
	}
	if station == "" {
		return rep, fmt.Errorf("%w: %s", ErrNotAttached, client)
	}
	// Split chains already pin their segments per affinity; silently
	// collapsing one onto a cloud site would discard that layout. Refuse
	// loudly — the operator detaches and re-attaches without affinities if
	// cloud hosting is really wanted.
	for _, spec := range specs {
		if len(SegmentsOf(spec)) > 1 {
			return rep, fmt.Errorf("manager: cannot offload %s: chain %s is split across stations by affinity", client, spec.Name)
		}
	}

	cloud, err := m.agentFor(site)
	if err != nil {
		return rep, err
	}
	if !cloud.Cloud {
		return rep, fmt.Errorf("%w: %s", ErrNotCloud, site)
	}
	edge, err := m.agentFor(station)
	if err != nil {
		return rep, err
	}

	// Phase 1: stand every chain up on the cloud site.
	for _, spec := range specs {
		mig := m.moveChainRemote(rec, edge, cloud, client, spec, station, site)
		rep.Chains = append(rep.Chains, mig)
		if mig.Err != "" {
			// Roll back what this chain did and stop; earlier chains
			// stay usable on the cloud only after the steer flips, so
			// re-enable their edge copies and drop the cloud copies.
			for _, done := range rep.Chains[:len(rep.Chains)-1] {
				cloud.call(agent.MethodRemove, agent.ChainRef{Chain: done.Chain}, nil)
				edge.call(agent.MethodEnable, agent.ChainRef{Chain: done.Chain}, nil)
			}
			return rep, fmt.Errorf("manager: offload %s/%s: %s", client, spec.Name, mig.Err)
		}
	}

	// Phase 2: flip the detour, then tear the edge copies down.
	if err := edge.steer(agent.SteerSpec{Client: client, Via: site}); err != nil {
		for _, done := range rep.Chains {
			cloud.call(agent.MethodRemove, agent.ChainRef{Chain: done.Chain}, nil)
			edge.call(agent.MethodEnable, agent.ChainRef{Chain: done.Chain}, nil)
		}
		return rep, err
	}
	for _, spec := range specs {
		edge.call(agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
	}

	rec.mu.Lock()
	rec.offload = site
	rec.steerOn = station
	for _, spec := range specs {
		rec.deployedOn[spec.Name] = site
	}
	rec.mu.Unlock()
	for _, mig := range rep.Chains {
		m.recordMigration(mig)
	}
	return rep, nil
}

// moveChainRemote stands one chain up on the cloud site with state carried
// over from the edge copy. The edge copy is left disabled (stateful) or
// running (cold) for the caller to remove after the detour flips.
func (m *Manager) moveChainRemote(rec *clientRec, edge, cloud *AgentHandle, client string, spec ChainSpec, station, site string) MigrationReport {
	strategy := m.state().strategy
	rec.mu.Lock()
	mac, ip := rec.mac, rec.ip
	rec.mu.Unlock()
	mig := MigrationReport{
		Client: client, Chain: spec.Name,
		From: station, To: site, Strategy: strategy,
	}
	fail := func(err error) MigrationReport {
		mig.Err = err.Error()
		return mig
	}
	total := clock.NewStopwatch(m.clk)

	cloud.call(agent.MethodPrefetch, agent.PrefetchSpec{Images: nfImagesFor(spec)}, nil)
	deploy := agent.DeploySpec{
		Chain:     spec.Name,
		Client:    client,
		ClientMAC: mac,
		ClientIP:  ip,
		Functions: spec.Functions,
		Remote:    true,
		Via:       station,
	}

	// Offload moves preserve state via stop-and-copy for both the stateful
	// and live strategies: pre-copy assumes the target can be staged behind
	// the client's steering, which a tunnelled remote deployment cannot
	// until the detour flips, so live degrades to one-shot copy here.
	if strategy == StrategyStateful || strategy == StrategyLive {
		if err := cloud.call(agent.MethodDeploy, deploy, nil); err != nil {
			return fail(err)
		}
		down := clock.NewStopwatch(m.clk)
		if err := edge.call(agent.MethodDisable, agent.ChainRef{Chain: spec.Name}, nil); err != nil {
			cloud.call(agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(err)
		}
		var ckpt agent.CheckpointResult
		if err := edge.call(agent.MethodCheckpoint, agent.ChainRef{Chain: spec.Name}, &ckpt); err != nil {
			edge.call(agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil)
			cloud.call(agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(err)
		}
		mig.StateBytes = len(ckpt.State)
		if err := cloud.call(agent.MethodRestore, agent.RestoreSpec{Chain: spec.Name, State: ckpt.State}, nil); err != nil {
			edge.call(agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil)
			cloud.call(agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(err)
		}
		if err := cloud.call(agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil); err != nil {
			// Same rollback as the checkpoint/restore branches: the edge
			// copy comes back to life and the cloud copy goes away.
			edge.call(agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil)
			cloud.call(agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
			return fail(err)
		}
		mig.Downtime = down.Elapsed()
	} else {
		deploy.Enabled = true
		down := clock.NewStopwatch(m.clk)
		if err := cloud.call(agent.MethodDeploy, deploy, nil); err != nil {
			return fail(err)
		}
		mig.Downtime = down.Elapsed()
	}
	mig.Total = total.Elapsed()
	return mig
}

// RecallClient moves an offloaded client's chains back to its current
// edge station, make-before-break: deploy and restore at the edge, clear
// the detour (traffic snaps back through the fresh local chains), then
// remove the cloud copies.
func (m *Manager) RecallClient(client string) (OffloadReport, error) {
	rep := OffloadReport{Client: client, Recall: true}

	rec := m.clients.get(client)
	if rec == nil {
		return rep, fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}

	rec.migMu.Lock()
	defer rec.migMu.Unlock()

	strategy := m.state().strategy
	rec.mu.Lock()
	site := rec.offload
	station := rec.station
	specs := sortedChains(rec)
	rec.mu.Unlock()
	rep.Site = site
	if site == "" {
		return rep, fmt.Errorf("%w: %s", ErrNotOffloaded, client)
	}
	if station == "" {
		return rep, fmt.Errorf("%w: %s", ErrNotAttached, client)
	}
	cloud, err := m.agentFor(site)
	if err != nil {
		return rep, err
	}
	edge, err := m.agentFor(station)
	if err != nil {
		return rep, err
	}

	for _, spec := range specs {
		mig := MigrationReport{
			Client: client, Chain: spec.Name,
			From: site, To: station, Strategy: strategy,
		}
		total := clock.NewStopwatch(m.clk)
		edge.call(agent.MethodPrefetch, agent.PrefetchSpec{Images: nfImagesFor(spec)}, nil)
		deploy := agent.DeploySpec{Chain: spec.Name, Client: client, Functions: spec.Functions}
		// Like the offload direction, recalls preserve state by one-shot
		// copy under both the stateful and live strategies.
		if strategy == StrategyStateful || strategy == StrategyLive {
			err = edge.call(agent.MethodDeploy, deploy, nil)
			down := clock.NewStopwatch(m.clk)
			if err == nil {
				err = cloud.call(agent.MethodDisable, agent.ChainRef{Chain: spec.Name}, nil)
			}
			var ckpt agent.CheckpointResult
			if err == nil {
				err = cloud.call(agent.MethodCheckpoint, agent.ChainRef{Chain: spec.Name}, &ckpt)
			}
			mig.StateBytes = len(ckpt.State)
			if err == nil {
				err = edge.call(agent.MethodRestore, agent.RestoreSpec{Chain: spec.Name, State: ckpt.State}, nil)
			}
			if err == nil {
				err = edge.call(agent.MethodEnable, agent.ChainRef{Chain: spec.Name}, nil)
			}
			mig.Downtime = down.Elapsed()
		} else {
			deploy.Enabled = true
			down := clock.NewStopwatch(m.clk)
			err = edge.call(agent.MethodDeploy, deploy, nil)
			mig.Downtime = down.Elapsed()
		}
		mig.Total = total.Elapsed()
		if err != nil {
			mig.Err = err.Error()
			rep.Chains = append(rep.Chains, mig)
			return rep, fmt.Errorf("manager: recall %s/%s: %w", client, spec.Name, err)
		}
		rep.Chains = append(rep.Chains, mig)
	}

	edge.call(agent.MethodUnsteer, agent.UnsteerSpec{Client: client}, nil)
	for _, spec := range specs {
		cloud.call(agent.MethodRemove, agent.ChainRef{Chain: spec.Name}, nil)
	}

	rec.mu.Lock()
	rec.offload, rec.steerOn = "", ""
	for _, spec := range specs {
		rec.deployedOn[spec.Name] = station
	}
	rec.mu.Unlock()
	for _, mig := range rep.Chains {
		m.recordMigration(mig)
	}
	return rep, nil
}

// reconcileOffloaded handles roaming for an offloaded client: chains stay
// on the cloud site; the cloud agent re-points their tunnel rules at the
// client's new station, which then installs the detour. Converges on the
// latest station like reconcileClient does.
func (m *Manager) reconcileOffloaded(client string, rec *clientRec) {
	rec.migMu.Lock()
	defer rec.migMu.Unlock()
	for {
		rec.mu.Lock()
		target := rec.station
		site := rec.offload
		steerOn := rec.steerOn
		done := target == "" || site == "" || steerOn == target
		specs := sortedChains(rec)
		rec.mu.Unlock()
		if done {
			return
		}
		rep := MigrationReport{
			Client: client, From: steerOn, To: target, Strategy: StrategySteer,
		}
		watch := clock.NewStopwatch(m.clk)
		err := m.steerTo(client, site, target, specs)
		rep.Downtime = watch.Elapsed()
		rep.Total = rep.Downtime
		if err != nil {
			rep.Err = err.Error()
		}
		rec.mu.Lock()
		if err == nil {
			rec.steerOn = target
		}
		rec.mu.Unlock()
		m.recordMigration(rep)
		if err != nil {
			return // avoid a hot loop on persistent failure
		}
	}
}

// steerTo re-points the cloud chains' tunnels at station and installs the
// detour there.
func (m *Manager) steerTo(client, site, station string, specs []ChainSpec) error {
	cloud, err := m.agentFor(site)
	if err != nil {
		return err
	}
	edge, err := m.agentFor(station)
	if err != nil {
		return err
	}
	for _, spec := range specs {
		if err := cloud.call(agent.MethodRetarget, agent.RetargetSpec{Chain: spec.Name, Via: station}, nil); err != nil {
			return err
		}
	}
	return edge.steer(agent.SteerSpec{Client: client, Via: site})
}

// AutoOffload scans for resource hotspots (§3: the Manager detects
// "resource-hotspots") and offloads every chain-bearing client of each hot
// edge station to the site chosen by the placement policy (CloudFirst
// recommended). It returns one report per offloaded client.
func (m *Manager) AutoOffload() ([]OffloadReport, error) {
	hot := m.Hotspots()
	var reports []OffloadReport
	for _, station := range hot {
		st := m.state()
		if h, ok := st.agents[station]; !ok || h.Cloud {
			continue // cloud sites don't offload further
		}
		var clients []string
		m.clients.forEach(func(client string, rec *clientRec) {
			rec.mu.Lock()
			if rec.station == station && rec.offload == "" && len(rec.chains) > 0 {
				clients = append(clients, client)
			}
			rec.mu.Unlock()
		})
		sort.Strings(clients)

		for _, client := range clients {
			site, ok := m.place(PlacementHint{Client: client, AllowCloud: true, ClientAt: station}, station)
			if !ok {
				return reports, fmt.Errorf("%w: no offload target for %s", ErrUnknownStation, client)
			}
			isCloud := false
			if h, ok := m.state().agents[site]; ok {
				isCloud = h.Cloud
			}
			if !isCloud {
				continue // policy picked an edge station; AutoOffload only bursts to cloud
			}
			rep, err := m.OffloadClient(client, site)
			reports = append(reports, rep)
			if err != nil {
				return reports, err
			}
		}
	}
	return reports, nil
}

// sortedChains snapshots a client's chain specs in name order. Callers
// must hold rec.mu.
func sortedChains(rec *clientRec) []ChainSpec {
	specs := make([]ChainSpec, 0, len(rec.chains))
	for _, s := range rec.chains {
		specs = append(specs, s)
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}
