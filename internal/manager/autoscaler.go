// The autoscaler is the control loop that makes shared NF instances
// elastic ("Online VNF Scaling in Datacenters", Wang et al.): it watches
// per-instance load — frames processed, summed from the replicas' striped
// dataplane counters and carried up in agent reports — and resizes each
// instance's replica group so per-replica load stays inside a band. The
// dataplane spreads flows across replicas by flow-hash (switch select
// groups), so a scale decision is one RPC that rewrites group membership.
package manager

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gnf/internal/trace"

	"gnf/internal/agent"
)

// AutoscalerPolicy bounds the per-replica load band. Loads are measured in
// frames processed since the previous evaluation, divided by the replica
// count — an interval-relative rate, which keeps the policy meaningful on
// both wall and virtual clocks.
type AutoscalerPolicy struct {
	// ScaleOutLoad is the per-replica processed-frames delta above which
	// one replica is added.
	ScaleOutLoad uint64
	// ScaleInLoad is the per-replica delta below which one replica is
	// removed (never below one replica).
	ScaleInLoad uint64
	// MaxReplicas caps a single instance's replica group (0 = 8).
	MaxReplicas int
}

// DefaultAutoscalerPolicy is a conservative band for 1s report intervals.
var DefaultAutoscalerPolicy = AutoscalerPolicy{
	ScaleOutLoad: 5000,
	ScaleInLoad:  500,
	MaxReplicas:  8,
}

// normalize fills zero fields with defaults.
func (p AutoscalerPolicy) normalize() AutoscalerPolicy {
	if p.MaxReplicas <= 0 {
		p.MaxReplicas = 8
	}
	return p
}

// ScaleEvent records one replica-group resize the autoscaler ordered.
type ScaleEvent struct {
	Station    string    `json:"station"`
	Kinds      string    `json:"kinds"`
	ConfigHash string    `json:"config_hash"`
	From       int       `json:"from"`
	To         int       `json:"to"`
	Reason     string    `json:"reason"`
	At         time.Time `json:"at"`
	Err        string    `json:"err,omitempty"`
}

// autoscaler is the manager-side state of the control loop.
type autoscaler struct {
	mu     sync.Mutex
	policy AutoscalerPolicy
	// lastProcessed remembers each instance's processed counter from the
	// previous evaluation, keyed station|kinds|hash, to turn monotonic
	// counters into per-interval deltas.
	lastProcessed map[string]uint64
	events        []ScaleEvent

	stop chan struct{}
	done chan struct{}
}

// SetAutoscalerPolicy installs the load band consulted by evaluations.
func (m *Manager) SetAutoscalerPolicy(p AutoscalerPolicy) {
	m.auto.mu.Lock()
	m.auto.policy = p.normalize()
	m.auto.mu.Unlock()
}

// AutoscalerPolicy returns the active policy.
func (m *Manager) AutoscalerPolicy() AutoscalerPolicy {
	m.auto.mu.Lock()
	defer m.auto.mu.Unlock()
	return m.auto.policy.normalize()
}

// ScaleEvents returns a copy of every scale decision taken so far.
func (m *Manager) ScaleEvents() []ScaleEvent {
	m.auto.mu.Lock()
	defer m.auto.mu.Unlock()
	return append([]ScaleEvent{}, m.auto.events...)
}

// EvaluateAutoscaler runs one synchronous autoscaling pass: pull a fresh
// report from every agent, compare each shared instance's per-replica load
// delta against the policy band, and order scale-out/scale-in RPCs. It
// returns the decisions of this pass (also appended to ScaleEvents).
// Deterministic given deterministic traffic — which is what lets scenarios
// script it.
func (m *Manager) EvaluateAutoscaler() []ScaleEvent {
	m.auto.mu.Lock()
	policy := m.auto.policy.normalize()
	m.auto.mu.Unlock()

	agents := m.state().agents
	handles := make([]*AgentHandle, 0, len(agents))
	for _, h := range agents {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, j int) bool { return handles[i].Station < handles[j].Station })

	var passEvents []ScaleEvent
	livePools := make(map[string]bool)
	for _, h := range handles {
		var rep agent.Report
		if err := h.call(agent.MethodStats, nil, &rep); err != nil {
			continue // dead agents are failover's problem, not the scaler's
		}
		for _, ps := range rep.Pools {
			key := h.Station + "|" + ps.Kinds + "|" + ps.ConfigHash
			livePools[key] = true
			m.auto.mu.Lock()
			last, seen := m.auto.lastProcessed[key]
			m.auto.lastProcessed[key] = ps.Processed
			m.auto.mu.Unlock()
			if !seen {
				continue // first sight establishes the baseline
			}
			if ps.Replicas == 0 || ps.Refs == 0 {
				continue // idle instance: the reaper owns it
			}
			// The aggregate shrinks when a scale-in tears a replica (and its
			// counters) down; a quiet interval is the safe reading — an
			// unsigned subtraction here once scaled a pool straight back out
			// on a phantom 2^64 load.
			var delta uint64
			if ps.Processed > last {
				delta = ps.Processed - last
			}
			perReplica := delta / uint64(ps.Replicas)
			target := ps.Replicas
			reason := ""
			switch {
			case perReplica >= policy.ScaleOutLoad && ps.Replicas < policy.MaxReplicas:
				target = ps.Replicas + 1
				reason = fmt.Sprintf("per-replica load %d >= %d", perReplica, policy.ScaleOutLoad)
			case perReplica <= policy.ScaleInLoad && ps.Replicas > 1:
				target = ps.Replicas - 1
				reason = fmt.Sprintf("per-replica load %d <= %d", perReplica, policy.ScaleInLoad)
			}
			if target == ps.Replicas {
				continue
			}
			ev := ScaleEvent{
				Station:    h.Station,
				Kinds:      ps.Kinds,
				ConfigHash: ps.ConfigHash,
				From:       ps.Replicas,
				To:         target,
				Reason:     reason,
				At:         m.clk.Now(),
			}
			if err := h.call(agent.MethodScalePool, agent.ScalePoolSpec{
				Kinds: ps.Kinds, ConfigHash: ps.ConfigHash, Replicas: target,
			}, nil); err != nil {
				ev.Err = err.Error()
			}
			passEvents = append(passEvents, ev)
		}
	}
	// Drop baselines for pools no longer reported (reaped instances,
	// departed stations): without pruning the map grows for the life of
	// the manager, and a re-created pool whose counters restarted at zero
	// would read one bogus quiet interval off the stale baseline. A pool
	// behind a transiently unreachable agent is pruned too and simply
	// re-baselines on its next appearance.
	m.auto.mu.Lock()
	for key := range m.auto.lastProcessed {
		if !livePools[key] {
			delete(m.auto.lastProcessed, key)
		}
	}
	m.recordScaleEventsLocked(passEvents...)
	m.auto.mu.Unlock()
	return passEvents
}

// recordScaleEventsLocked appends to the scale-event history, trimming to
// historyCap, and journals each resize. Callers hold m.auto.mu (the
// journal's lock is a leaf, so appending under it is safe).
func (m *Manager) recordScaleEventsLocked(evs ...ScaleEvent) {
	m.auto.events = append(m.auto.events, evs...)
	if len(m.auto.events) > historyCap {
		m.auto.events = m.auto.events[len(m.auto.events)-historyCap:]
	}
	for _, ev := range evs {
		m.journal.Append(trace.Event{
			Type: trace.EventScale, Subject: ev.Kinds, Station: ev.Station, At: ev.At,
			Detail: fmt.Sprintf("%d->%d (%s)", ev.From, ev.To, ev.Reason),
			Err:    ev.Err,
		})
	}
}

// ScalePool resizes one shared-instance replica group directly — the
// imperative primitive behind desired-state pool targets, recorded in
// ScaleEvents alongside autoscaler decisions.
func (m *Manager) ScalePool(station, kinds, configHash string, replicas int) error {
	if replicas < 1 {
		return fmt.Errorf("manager: scale %s/%s: replicas must be >= 1, got %d", station, kinds, replicas)
	}
	h, err := m.agentFor(station)
	if err != nil {
		return err
	}
	from := 0
	var rep agent.Report
	if err := h.call(agent.MethodStats, nil, &rep); err == nil {
		for _, ps := range rep.Pools {
			if ps.Kinds == kinds && ps.ConfigHash == configHash {
				from = ps.Replicas
				break
			}
		}
	}
	ev := ScaleEvent{
		Station: station, Kinds: kinds, ConfigHash: configHash,
		From: from, To: replicas, Reason: "desired-state", At: m.clk.Now(),
	}
	callErr := h.call(agent.MethodScalePool, agent.ScalePoolSpec{
		Kinds: kinds, ConfigHash: configHash, Replicas: replicas,
	}, nil)
	if callErr != nil {
		ev.Err = callErr.Error()
	}
	m.auto.mu.Lock()
	m.recordScaleEventsLocked(ev)
	m.auto.mu.Unlock()
	return callErr
}

// StartAutoscaler runs EvaluateAutoscaler every interval until the manager
// closes (or StopAutoscaler). Wall-clock deployments use this; virtual
// scenarios script evaluations instead.
func (m *Manager) StartAutoscaler(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	m.auto.mu.Lock()
	if m.auto.stop != nil {
		m.auto.mu.Unlock()
		return // already running
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.auto.stop, m.auto.done = stop, done
	m.auto.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.EvaluateAutoscaler()
			}
		}
	}()
}

// StopAutoscaler halts the background loop (idempotent).
func (m *Manager) StopAutoscaler() {
	m.auto.mu.Lock()
	stop, done := m.auto.stop, m.auto.done
	m.auto.stop, m.auto.done = nil, nil
	m.auto.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// PoolTables fetches every connected agent's live shared-instance table —
// the data behind `gnfctl pools` and GET /api/pools. Stations are keyed by
// name; agents that cannot be reached are omitted.
func (m *Manager) PoolTables() map[string][]agent.PoolStatus {
	agents := m.state().agents
	handles := make([]*AgentHandle, 0, len(agents))
	for _, h := range agents {
		handles = append(handles, h)
	}
	out := make(map[string][]agent.PoolStatus)
	for _, h := range handles {
		var rep agent.Report
		if err := h.call(agent.MethodStats, nil, &rep); err != nil {
			continue
		}
		out[h.Station] = rep.Pools
	}
	return out
}
