package manager_test

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/manager"
	"gnf/internal/wire"
)

// scriptedAgent is a wire-level fake station: it serves the agent.* RPC
// surface, records every call in order, and fails the methods listed in
// fail — the instrument for exercising the manager's migration rollback
// paths without a dataplane.
type scriptedAgent struct {
	t       *testing.T
	peer    *wire.Peer
	station string

	mu    sync.Mutex
	calls []string
	fail  map[string]bool
	gates map[string]*agentGate
	state []byte
}

// agentGate parks a method's handler: entered closes when the first call
// arrives, and the handler then blocks until release closes — the
// instrument for pinning an RPC mid-flight while something else races it.
type agentGate struct {
	entered, release chan struct{}
	once             sync.Once
}

func newScriptedAgent(t *testing.T, mgr *manager.Manager, station string) *scriptedAgent {
	t.Helper()
	peer, err := wire.Dial(mgr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	sa := &scriptedAgent{t: t, peer: peer, station: station,
		fail: map[string]bool{}, gates: map[string]*agentGate{}, state: []byte("blob")}
	ok := func(method string) wire.Handler {
		return func(json.RawMessage) (any, error) {
			if sa.record(method) {
				return nil, fmt.Errorf("%s: scripted failure", method)
			}
			return nil, nil
		}
	}
	for _, m := range []string{agent.MethodDeploy, agent.MethodRemove, agent.MethodEnable,
		agent.MethodDisable, agent.MethodRestore, agent.MethodPrefetch, agent.MethodSyncDelta} {
		peer.Handle(m, ok(m))
	}
	peer.Handle(agent.MethodCheckpoint, func(json.RawMessage) (any, error) {
		if sa.record(agent.MethodCheckpoint) {
			return nil, fmt.Errorf("checkpoint: scripted failure")
		}
		return agent.CheckpointResult{State: sa.state}, nil
	})
	peer.Handle(agent.MethodPreCopy, func(json.RawMessage) (any, error) {
		if sa.record(agent.MethodPreCopy) {
			return nil, fmt.Errorf("precopy: scripted failure")
		}
		return agent.PreCopyResult{State: []byte("delta"), Round: 1}, nil
	})
	peer.Handle(agent.MethodActivate, func(json.RawMessage) (any, error) {
		if sa.record(agent.MethodActivate) {
			return nil, fmt.Errorf("activate: scripted failure")
		}
		return agent.ActivateResult{}, nil
	})
	go peer.Run()
	if err := peer.Call(agent.MethodRegister, agent.RegisterSpec{Station: station}, nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	return sa
}

// record logs the call, parks on an armed gate, and reports whether the
// call should fail.
func (sa *scriptedAgent) record(method string) bool {
	sa.mu.Lock()
	sa.calls = append(sa.calls, method)
	fail := sa.fail[method]
	g := sa.gates[method]
	sa.mu.Unlock()
	if g != nil {
		g.once.Do(func() { close(g.entered) })
		<-g.release
	}
	return fail
}

// holdOn arms a gate on the method's next call.
func (sa *scriptedAgent) holdOn(method string) *agentGate {
	g := &agentGate{entered: make(chan struct{}), release: make(chan struct{})}
	sa.mu.Lock()
	sa.gates[method] = g
	sa.mu.Unlock()
	return g
}

func (sa *scriptedAgent) failOn(method string) {
	sa.mu.Lock()
	sa.fail[method] = true
	sa.mu.Unlock()
}

func (sa *scriptedAgent) callLog() []string {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	return append([]string(nil), sa.calls...)
}

// sawAfter reports whether method appears in the call log at or after the
// first occurrence of marker ("" = anywhere).
func (sa *scriptedAgent) sawAfter(method, marker string) bool {
	seenMarker := marker == ""
	for _, c := range sa.callLog() {
		if c == marker {
			seenMarker = true
		}
		if seenMarker && c == method {
			return true
		}
	}
	return false
}

// migrationFixture wires a manager with two scripted stations and one
// client whose chain is deployed on st-src.
func migrationFixture(t *testing.T, strategy manager.Strategy) (*manager.Manager, *scriptedAgent, *scriptedAgent) {
	t.Helper()
	mgr, err := manager.New(clock.System(), "127.0.0.1:0", manager.WithStrategy(strategy))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	src := newScriptedAgent(t, mgr, "st-src")
	dst := newScriptedAgent(t, mgr, "st-dst")

	// Announce the client on st-src, then attach the chain there.
	if err := src.peer.Call(agent.MethodClientEvent,
		agent.ClientEvent{Station: "st-src", Client: "phone", Connected: true}, nil); err != nil {
		t.Fatal(err)
	}
	mgr.WaitIdle()
	spec := manager.ChainSpec{Name: "chain", Functions: []agent.NFSpec{{Kind: "counter", Name: "c0"}}}
	if err := mgr.AttachChain("phone", spec); err != nil {
		t.Fatal(err)
	}
	return mgr, src, dst
}

// TestStatefulEnableFailureRollsBack is the regression test for the
// rollback hole: a failed MethodEnable on the target used to return
// without re-enabling the source or removing the half-deployed target,
// leaving the client dark on both ends.
func TestStatefulEnableFailureRollsBack(t *testing.T) {
	mgr, src, dst := migrationFixture(t, manager.StrategyStateful)
	dst.failOn(agent.MethodEnable)

	rep, err := mgr.MigrateChain("phone", "chain", "st-dst")
	if err == nil || rep.Err == "" {
		t.Fatalf("migration unexpectedly succeeded: %+v", rep)
	}
	if !src.sawAfter(agent.MethodEnable, agent.MethodDisable) {
		t.Fatalf("source never re-enabled after freeze; calls: %v", src.callLog())
	}
	if !dst.sawAfter(agent.MethodRemove, agent.MethodEnable) {
		t.Fatalf("half-deployed target never removed; calls: %v", dst.callLog())
	}
	// The placement record must still point at the source.
	for _, pl := range mgr.Placements() {
		if pl.Chain == "chain" && pl.Station != "st-src" {
			t.Fatalf("placement moved despite rollback: %+v", pl)
		}
	}
}

// TestLiveActivateFailureRollsBack checks the same guarantee on the live
// pipeline's last step.
func TestLiveActivateFailureRollsBack(t *testing.T) {
	mgr, src, dst := migrationFixture(t, manager.StrategyLive)
	dst.failOn(agent.MethodActivate)

	rep, err := mgr.MigrateChain("phone", "chain", "st-dst")
	if err == nil || rep.Err == "" {
		t.Fatalf("migration unexpectedly succeeded: %+v", rep)
	}
	if !src.sawAfter(agent.MethodEnable, agent.MethodDisable) {
		t.Fatalf("source never re-enabled after freeze; calls: %v", src.callLog())
	}
	if !dst.sawAfter(agent.MethodRemove, agent.MethodActivate) {
		t.Fatalf("half-synced target never removed; calls: %v", dst.callLog())
	}
}

// TestLiveSyncFailureRollsBackBeforeFreeze checks rollback when a
// pre-copy round fails while the source still serves: the source is never
// frozen, and the target is cleaned up.
func TestLiveSyncFailureRollsBackBeforeFreeze(t *testing.T) {
	mgr, src, dst := migrationFixture(t, manager.StrategyLive)
	dst.failOn(agent.MethodSyncDelta)

	rep, err := mgr.MigrateChain("phone", "chain", "st-dst")
	if err == nil || rep.Err == "" {
		t.Fatalf("migration unexpectedly succeeded: %+v", rep)
	}
	for _, c := range src.callLog() {
		if c == agent.MethodDisable {
			t.Fatalf("source frozen although pre-copy never converged; calls: %v", src.callLog())
		}
	}
	if !dst.sawAfter(agent.MethodRemove, agent.MethodSyncDelta) {
		t.Fatalf("target not removed after sync failure; calls: %v", dst.callLog())
	}
}

// TestLiveMigrationProtocolOrder pins the happy-path RPC sequence: deploy
// and pre-copy rounds before the freeze, residual + activate inside it,
// source removal after.
func TestLiveMigrationProtocolOrder(t *testing.T) {
	mgr, src, dst := migrationFixture(t, manager.StrategyLive)
	rep, err := mgr.MigrateChain("phone", "chain", "st-dst")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds < 1 || rep.Err != "" {
		t.Fatalf("report = %+v", rep)
	}
	// Source: precopy (>=1) ... disable ... precopy (residual) ... remove.
	wantSrc := []string{agent.MethodPreCopy, agent.MethodDisable, agent.MethodPreCopy, agent.MethodRemove}
	srcLog := src.callLog()
	i := 0
	for _, c := range srcLog {
		if i < len(wantSrc) && c == wantSrc[i] {
			i++
		}
	}
	if i != len(wantSrc) {
		t.Fatalf("source order %v missing subsequence %v", srcLog, wantSrc)
	}
	// Target: deploy ... syncDelta ... activate; never a plain enable.
	wantDst := []string{agent.MethodDeploy, agent.MethodSyncDelta, agent.MethodActivate}
	dstLog := dst.callLog()
	i = 0
	for _, c := range dstLog {
		if c == agent.MethodEnable {
			t.Fatalf("live path used MethodEnable on target: %v", dstLog)
		}
		if i < len(wantDst) && c == wantDst[i] {
			i++
		}
	}
	if i != len(wantDst) {
		t.Fatalf("target order %v missing subsequence %v", dstLog, wantDst)
	}
}

// TestColdDowntimeAccountsActualDarkWindow is the regression test for the
// downtime accounting fix: with a live source the old chain serves until
// MethodRemove while the target deploys enabled first (make-before-break),
// so the reported dark window must be zero — not the deploy duration.
func TestColdDowntimeAccountsActualDarkWindow(t *testing.T) {
	mgr, src, dst := migrationFixture(t, manager.StrategyCold)
	rep, err := mgr.MigrateChain("phone", "chain", "st-dst")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Downtime != 0 {
		t.Fatalf("cold migration with live source reported %v downtime, want 0", rep.Downtime)
	}
	if rep.Total <= 0 {
		t.Fatalf("total = %v, want > 0", rep.Total)
	}
	if !dst.sawAfter(agent.MethodDeploy, "") {
		t.Fatalf("target never deployed: %v", dst.callLog())
	}
	// Make-before-break: the target deploy precedes the source removal.
	deployAt, removeAt := -1, -1
	for i, c := range dst.callLog() {
		if c == agent.MethodDeploy && deployAt == -1 {
			deployAt = i
		}
	}
	for i, c := range src.callLog() {
		if c == agent.MethodRemove && removeAt == -1 {
			removeAt = i
		}
	}
	if deployAt == -1 || removeAt == -1 {
		t.Fatalf("deploy/remove missing: dst=%v src=%v", dst.callLog(), src.callLog())
	}
}
