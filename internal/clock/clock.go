// Package clock provides pluggable time sources so that every cost model in
// GNF (container boot latency, link delays, migration downtime) can run
// either against the wall clock (demos) or against a deterministic virtual
// clock (tests and benchmarks).
//
// The zero-dependency design follows the usual "clock interface" idiom:
// production code takes a Clock; tests inject a *Virtual and drive it with
// Advance, or enable auto-advance so Sleep returns immediately after moving
// simulated time forward.
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time source used throughout GNF.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep pauses the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time after d.
	After(d time.Duration) <-chan time.Time
	// Since returns the elapsed clock time since t.
	Since(t time.Time) time.Duration
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// System returns the process wall clock.
func System() Clock { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Virtual is a simulated clock. Time only moves when Advance is called, or —
// when constructed with NewAutoVirtual — whenever a goroutine sleeps, in
// which case Sleep advances time by the requested duration and returns
// immediately. Auto mode is what the cost models use: a "boot takes 120ms"
// sleep becomes a deterministic 120ms jump of simulated time with zero wall
// delay.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	auto    bool
	waiters []*waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// Epoch is the default start time for virtual clocks: an arbitrary, stable
// instant so that test output is reproducible.
var Epoch = time.Date(2016, 8, 22, 9, 0, 0, 0, time.UTC) // first day of SIGCOMM'16

// NewVirtual returns a virtual clock starting at Epoch that only moves via
// Advance.
func NewVirtual() *Virtual { return &Virtual{now: Epoch} }

// NewAutoVirtual returns a virtual clock in auto-advance mode: Sleep(d)
// advances simulated time by d and returns without blocking.
func NewAutoVirtual() *Virtual { return &Virtual{now: Epoch, auto: true} }

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep implements Clock. In auto mode it advances the clock by d and
// returns immediately; otherwise it blocks until Advance moves the clock
// past the deadline.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	if v.auto {
		v.advanceLocked(d)
		v.mu.Unlock()
		return
	}
	w := &waiter{deadline: v.now.Add(d), ch: make(chan time.Time, 1)}
	v.waiters = append(v.waiters, w)
	v.mu.Unlock()
	<-w.ch
}

// After implements Clock. In auto mode the returned channel is immediately
// ready (time has already advanced).
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	if v.auto {
		v.advanceLocked(d)
		ch <- v.now
		return ch
	}
	v.waiters = append(v.waiters, &waiter{deadline: v.now.Add(d), ch: ch})
	return ch
}

// Advance moves simulated time forward by d, waking any sleeper whose
// deadline is reached. It is a no-op for d <= 0.
func (v *Virtual) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	v.advanceLocked(d)
	v.mu.Unlock()
}

// AdvanceTo moves simulated time to t if t is later than now.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	if t.After(v.now) {
		v.advanceLocked(t.Sub(v.now))
	}
	v.mu.Unlock()
}

func (v *Virtual) advanceLocked(d time.Duration) {
	v.now = v.now.Add(d)
	kept := v.waiters[:0]
	for _, w := range v.waiters {
		if !w.deadline.After(v.now) {
			w.ch <- v.now
		} else {
			kept = append(kept, w)
		}
	}
	v.waiters = kept
}

// Pending reports how many sleepers are waiting on this clock. Useful for
// tests that drive Advance in lock-step with worker goroutines.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// NextDeadline returns the earliest sleeper deadline and true, or a zero
// time and false when nobody is waiting.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.waiters) == 0 {
		return time.Time{}, false
	}
	min := v.waiters[0].deadline
	for _, w := range v.waiters[1:] {
		if w.deadline.Before(min) {
			min = w.deadline
		}
	}
	return min, true
}

// RunUntilIdle repeatedly advances the clock to the next sleeper deadline
// until no sleepers remain. It returns the number of advances performed.
func (v *Virtual) RunUntilIdle() int {
	n := 0
	for {
		dl, ok := v.NextDeadline()
		if !ok {
			return n
		}
		v.AdvanceTo(dl)
		n++
	}
}

// Stopwatch measures elapsed time on an arbitrary Clock.
type Stopwatch struct {
	c     Clock
	start time.Time
}

// NewStopwatch starts a stopwatch on c.
func NewStopwatch(c Clock) *Stopwatch { return &Stopwatch{c: c, start: c.Now()} }

// Elapsed returns time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return s.c.Since(s.start) }

// Restart resets the start time to now and returns the previous elapsed
// duration.
func (s *Stopwatch) Restart() time.Duration {
	e := s.Elapsed()
	s.start = s.c.Now()
	return e
}
