package clock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRealClockMonotonic(t *testing.T) {
	c := System()
	a := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(a) <= 0 {
		t.Fatalf("real clock did not advance")
	}
}

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", v.Now(), Epoch)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	v.Advance(3 * time.Second)
	if got := v.Since(Epoch); got != 3*time.Second {
		t.Fatalf("Since(Epoch) = %v, want 3s", got)
	}
	v.Advance(-time.Second) // no-op
	if got := v.Since(Epoch); got != 3*time.Second {
		t.Fatalf("negative Advance moved time: %v", got)
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	go func() {
		v.Sleep(100 * time.Millisecond)
		close(done)
	}()
	// Wait for the sleeper to register.
	for v.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	v.Advance(99 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("Sleep returned before deadline")
	case <-time.After(5 * time.Millisecond):
	}
	v.Advance(time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not wake at deadline")
	}
}

func TestVirtualZeroSleepReturns(t *testing.T) {
	v := NewVirtual()
	v.Sleep(0)
	v.Sleep(-time.Second)
	if v.Pending() != 0 {
		t.Fatalf("zero sleeps left %d waiters", v.Pending())
	}
}

func TestAutoVirtualSleepAdvances(t *testing.T) {
	v := NewAutoVirtual()
	v.Sleep(250 * time.Millisecond)
	if got := v.Since(Epoch); got != 250*time.Millisecond {
		t.Fatalf("auto sleep advanced %v, want 250ms", got)
	}
	<-v.After(750 * time.Millisecond)
	if got := v.Since(Epoch); got != time.Second {
		t.Fatalf("after After: %v, want 1s", got)
	}
}

func TestAfterNonAutoFiresOnAdvance(t *testing.T) {
	v := NewVirtual()
	ch := v.After(time.Second)
	select {
	case <-ch:
		t.Fatal("After fired early")
	default:
	}
	v.Advance(time.Second)
	select {
	case tm := <-ch:
		if !tm.Equal(Epoch.Add(time.Second)) {
			t.Fatalf("After delivered %v", tm)
		}
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
}

func TestAfterZeroImmediate(t *testing.T) {
	v := NewVirtual()
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) not immediately ready")
	}
}

func TestNextDeadlineAndRunUntilIdle(t *testing.T) {
	v := NewVirtual()
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline on idle clock reported a waiter")
	}
	var wg sync.WaitGroup
	durs := []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	for _, d := range durs {
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			v.Sleep(d)
		}(d)
	}
	for v.Pending() != len(durs) {
		time.Sleep(time.Millisecond)
	}
	dl, ok := v.NextDeadline()
	if !ok || !dl.Equal(Epoch.Add(10*time.Millisecond)) {
		t.Fatalf("NextDeadline = %v, %v", dl, ok)
	}
	if n := v.RunUntilIdle(); n == 0 {
		t.Fatal("RunUntilIdle performed no advances")
	}
	wg.Wait()
	if got := v.Since(Epoch); got != 30*time.Millisecond {
		t.Fatalf("clock at %v after RunUntilIdle, want 30ms", got)
	}
}

func TestManySleepersAllWake(t *testing.T) {
	v := NewVirtual()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v.Sleep(time.Duration(i+1) * time.Millisecond)
		}(i)
	}
	for v.Pending() != n {
		time.Sleep(time.Millisecond)
	}
	v.Advance(n * time.Millisecond)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("not all sleepers woke; %d still pending", v.Pending())
	}
}

func TestStopwatch(t *testing.T) {
	v := NewAutoVirtual()
	sw := NewStopwatch(v)
	v.Sleep(5 * time.Second)
	if e := sw.Elapsed(); e != 5*time.Second {
		t.Fatalf("Elapsed = %v, want 5s", e)
	}
	if e := sw.Restart(); e != 5*time.Second {
		t.Fatalf("Restart returned %v, want 5s", e)
	}
	if e := sw.Elapsed(); e != 0 {
		t.Fatalf("Elapsed after Restart = %v, want 0", e)
	}
}

// Property: on an auto clock, total advancement equals the sum of all slept
// durations, for any sequence of sleeps.
func TestAutoAdvanceAccumulatesProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		v := NewAutoVirtual()
		var want time.Duration
		for _, s := range steps {
			d := time.Duration(s) * time.Microsecond
			want += d
			v.Sleep(d)
		}
		return v.Since(Epoch) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AdvanceTo never moves time backwards.
func TestAdvanceToMonotoneProperty(t *testing.T) {
	f := func(offsets []int32) bool {
		v := NewVirtual()
		prev := v.Now()
		for _, off := range offsets {
			v.AdvanceTo(Epoch.Add(time.Duration(off) * time.Millisecond))
			if v.Now().Before(prev) {
				return false
			}
			prev = v.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
