package spec

import (
	"strings"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/clock"
	"gnf/internal/manager"
	"gnf/internal/nf"
)

func chain(name, kind string, params map[string]string) Chain {
	return Chain{ChainSpec: manager.ChainSpec{
		Name:      name,
		Functions: []agent.NFSpec{{Kind: kind, Name: kind + "-0", Params: nf.Params(params)}},
	}}
}

func TestHashCanonicalUnderReordering(t *testing.T) {
	a := &Spec{Clients: []Client{
		{ID: "tablet", Chains: []Chain{chain("b", "counter", nil), chain("a", "firewall", map[string]string{"k": "v", "x": "y"})}},
		{ID: "phone", Chains: []Chain{chain("fw", "firewall", nil)}},
	}}
	b := &Spec{Version: 1, Clients: []Client{
		{ID: "phone", Chains: []Chain{chain("fw", "firewall", nil)}},
		{ID: "tablet", Chains: []Chain{chain("a", "firewall", map[string]string{"x": "y", "k": "v"}), chain("b", "counter", nil)}},
	}}
	if a.Hash() != b.Hash() {
		t.Fatalf("reordered specs hash differently:\n%s\n%s", a.Hash(), b.Hash())
	}
	c := b.Clone()
	c.Clients[0].Chains[0].MaxRTTMs = 9
	if c.Hash() == b.Hash() {
		t.Fatal("different content, same hash")
	}
	// Hash must not mutate the receiver's declaration order.
	if a.Clients[0].ID != "tablet" {
		t.Fatal("Hash normalized the receiver in place")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{chain("fw", "firewall", map[string]string{"policy": "accept"})}}}}
	cp := orig.Clone()
	cp.Clients[0].Chains[0].Functions[0].Params["policy"] = "drop"
	if orig.Clients[0].Chains[0].Functions[0].Params["policy"] != "accept" {
		t.Fatal("clone shares param maps with the original")
	}
}

func TestValidate(t *testing.T) {
	valid := func() *Spec {
		return &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{chain("fw", "firewall", nil)}}}}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"bad version", func(s *Spec) { s.Version = 7 }, "unsupported version"},
		{"bad strategy", func(s *Spec) { s.Strategy = "teleport" }, "unknown strategy"},
		{"bad placement", func(s *Spec) { s.Placement = "nope" }, "unknown placement"},
		{"empty client id", func(s *Spec) { s.Clients[0].ID = "" }, "empty id"},
		{"dup client", func(s *Spec) { s.Clients = append(s.Clients, s.Clients[0]) }, "duplicate client"},
		{"empty chain name", func(s *Spec) { s.Clients[0].Chains[0].Name = "" }, "empty name"},
		{"dup chain", func(s *Spec) {
			s.Clients[0].Chains = append(s.Clients[0].Chains, s.Clients[0].Chains[0])
		}, "duplicate chain"},
		{"no functions", func(s *Spec) { s.Clients[0].Chains[0].Functions = nil }, "no functions"},
		{"no kind", func(s *Spec) { s.Clients[0].Chains[0].Functions[0].Kind = "" }, "no kind"},
		{"negative budget", func(s *Spec) { s.Clients[0].Chains[0].MaxRTTMs = -1 }, "negative max_rtt_ms"},
		{"window no enable", func(s *Spec) {
			s.Clients[0].Chains[0].Schedule = &manager.Window{}
		}, "no enable_at"},
		{"window inverted", func(s *Spec) {
			s.Clients[0].Chains[0].Schedule = &manager.Window{
				EnableAt: clock.Epoch.Add(time.Hour), DisableAt: clock.Epoch,
			}
		}, "disables before"},
		{"pool missing fields", func(s *Spec) { s.Pools = []PoolTarget{{Replicas: 2}} }, "pool target needs"},
		{"pool zero replicas", func(s *Spec) {
			s.Pools = []PoolTarget{{Station: "st-a", Kinds: "firewall", ConfigHash: "h", Replicas: 0}}
		}, "replicas >= 1"},
		{"pool duplicate", func(s *Spec) {
			p := PoolTarget{Station: "st-a", Kinds: "firewall", ConfigHash: "h", Replicas: 2}
			s.Pools = []PoolTarget{p, p}
		}, "duplicate pool"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := valid()
			tc.mut(s)
			err := s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want contains %q", err, tc.want)
			}
		})
	}
	// Known strategies and placements pass.
	s := valid()
	s.Strategy = "live"
	s.Placement = "qos"
	if err := s.Validate(); err != nil {
		t.Fatalf("live/qos rejected: %v", err)
	}
}

// actualFor builds an Actual with one connected client hosting the given
// desired chains, settled in place — the converged picture.
func actualFor(desired *Spec, station string) *Actual {
	a := &Actual{Clients: map[string]ActualClient{}}
	for _, dc := range desired.Clients {
		ac := ActualClient{Station: station, Offload: dc.Offload, Chains: map[string]ActualChain{}, Windows: map[string]manager.Window{}}
		at := station
		if dc.Offload != "" {
			at = dc.Offload
		}
		for _, ch := range dc.Chains {
			ac.Chains[ch.Name] = ActualChain{Spec: ch.ChainSpec, DeployedOn: at, Settled: true}
			if ch.Schedule != nil {
				ac.Windows[ch.Name] = *ch.Schedule
			}
		}
		a.Clients[dc.ID] = ac
	}
	return a
}

func kinds(actions []Action) []ActionKind {
	out := make([]ActionKind, len(actions))
	for i, a := range actions {
		out[i] = a.Kind
	}
	return out
}

func TestDiffConvergedIsEmpty(t *testing.T) {
	desired := &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{chain("fw", "firewall", nil), chain("acct", "counter", nil)}}}}
	if d := Diff(desired, actualFor(desired, "st-a")); len(d) != 0 {
		t.Fatalf("converged diff = %+v", d)
	}
}

func TestDiffFreshAttach(t *testing.T) {
	desired := &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{chain("fw", "firewall", nil)}}}}
	actual := &Actual{Clients: map[string]ActualClient{
		"phone": {Station: "st-a", Chains: map[string]ActualChain{}},
	}}
	d := Diff(desired, actual)
	if len(d) != 1 || d[0].Kind != ActionAttach || d[0].Chain == nil || d[0].Chain.Name != "fw" {
		t.Fatalf("diff = %+v", d)
	}
}

func TestDiffDetachUndesired(t *testing.T) {
	desired := &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{chain("fw", "firewall", nil)}}}}
	actual := actualFor(desired, "st-a")
	ac := actual.Clients["phone"]
	ac.Chains["old"] = ActualChain{Spec: manager.ChainSpec{Name: "old"}, DeployedOn: "st-a", Settled: true}
	actual.Clients["phone"] = ac
	d := Diff(desired, actual)
	if len(d) != 1 || d[0].Kind != ActionDetach || d[0].ChainName != "old" {
		t.Fatalf("diff = %+v", d)
	}
}

func TestDiffChangedConfigReplaces(t *testing.T) {
	desired := &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{chain("fw", "firewall", map[string]string{"policy": "drop"})}}}}
	actual := &Actual{Clients: map[string]ActualClient{
		"phone": {Station: "st-a", Chains: map[string]ActualChain{
			"fw": {Spec: chain("fw", "firewall", map[string]string{"policy": "accept"}).ChainSpec, DeployedOn: "st-a", Settled: true},
		}},
	}}
	d := Diff(desired, actual)
	got := kinds(d)
	if len(got) != 2 || got[0] != ActionDetach || got[1] != ActionAttach {
		t.Fatalf("diff kinds = %v (%+v)", got, d)
	}
}

func TestDiffDriftMigrates(t *testing.T) {
	desired := &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{chain("fw", "firewall", nil)}}}}
	actual := &Actual{Clients: map[string]ActualClient{
		"phone": {Station: "st-b", Chains: map[string]ActualChain{
			"fw": {Spec: chain("fw", "firewall", nil).ChainSpec, DeployedOn: "st-a", Settled: false},
		}},
	}}
	d := Diff(desired, actual)
	if len(d) != 1 || d[0].Kind != ActionMigrate || d[0].Station != "st-b" {
		t.Fatalf("diff = %+v", d)
	}
}

func TestDiffOffloadTransitions(t *testing.T) {
	base := []Chain{chain("fw", "firewall", nil)}
	t.Run("offload desired", func(t *testing.T) {
		desired := &Spec{Clients: []Client{{ID: "phone", Offload: "cloud-1", Chains: base}}}
		actual := &Actual{Clients: map[string]ActualClient{
			"phone": {Station: "st-a", Chains: map[string]ActualChain{
				"fw": {Spec: base[0].ChainSpec, DeployedOn: "st-a", Settled: true},
			}},
		}}
		d := Diff(desired, actual)
		if len(d) != 1 || d[0].Kind != ActionOffload || d[0].Site != "cloud-1" {
			t.Fatalf("diff = %+v", d)
		}
	})
	t.Run("recall desired", func(t *testing.T) {
		desired := &Spec{Clients: []Client{{ID: "phone", Chains: base}}}
		actual := &Actual{Clients: map[string]ActualClient{
			"phone": {Station: "st-a", Offload: "cloud-1", Chains: map[string]ActualChain{
				"fw": {Spec: base[0].ChainSpec, DeployedOn: "cloud-1", Settled: true},
			}},
		}}
		d := Diff(desired, actual)
		if len(d) != 1 || d[0].Kind != ActionRecall {
			t.Fatalf("diff = %+v", d)
		}
	})
	t.Run("site change recalls first", func(t *testing.T) {
		desired := &Spec{Clients: []Client{{ID: "phone", Offload: "cloud-2", Chains: base}}}
		actual := &Actual{Clients: map[string]ActualClient{
			"phone": {Station: "st-a", Offload: "cloud-1", Chains: map[string]ActualChain{
				"fw": {Spec: base[0].ChainSpec, DeployedOn: "cloud-1", Settled: true},
			}},
		}}
		d := Diff(desired, actual)
		if len(d) != 1 || d[0].Kind != ActionRecall {
			t.Fatalf("site change diff = %+v (want recall only; offload lands next pass)", d)
		}
	})
}

func TestDiffDisconnectedClientDefersAttach(t *testing.T) {
	desired := &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{chain("fw", "firewall", nil)}}}}
	// Station "" = roaming-disconnected: attach must wait, but a stale
	// chain not in the spec still detaches (the manager accepts that).
	actual := &Actual{Clients: map[string]ActualClient{
		"phone": {Station: "", Chains: map[string]ActualChain{
			"old": {Spec: manager.ChainSpec{Name: "old"}, DeployedOn: "st-a"},
		}},
	}}
	d := Diff(desired, actual)
	if len(d) != 1 || d[0].Kind != ActionDetach || d[0].ChainName != "old" {
		t.Fatalf("diff = %+v", d)
	}
}

func TestDiffScopeRules(t *testing.T) {
	desired := &Spec{Clients: []Client{{ID: "ghost", Chains: []Chain{chain("fw", "firewall", nil)}}}}
	actual := &Actual{Clients: map[string]ActualClient{
		"phone": {Station: "st-a", Chains: map[string]ActualChain{
			"other": {Spec: manager.ChainSpec{Name: "other"}, DeployedOn: "st-a", Settled: true},
		}},
	}}
	// ghost never attached -> deferred; phone unlisted -> untouched.
	if d := Diff(desired, actual); len(d) != 0 {
		t.Fatalf("diff = %+v, want empty", d)
	}
}

func TestDiffSchedules(t *testing.T) {
	w1 := manager.Window{EnableAt: clock.Epoch.Add(time.Hour)}
	w2 := manager.Window{EnableAt: clock.Epoch.Add(2 * time.Hour)}
	withWin := chain("fw", "firewall", nil)
	withWin.Schedule = &w1
	t.Run("add", func(t *testing.T) {
		desired := &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{withWin}}}}
		actual := &Actual{Clients: map[string]ActualClient{
			"phone": {Station: "st-a", Chains: map[string]ActualChain{
				"fw": {Spec: withWin.ChainSpec, DeployedOn: "st-a", Settled: true},
			}},
		}}
		d := Diff(desired, actual)
		if len(d) != 1 || d[0].Kind != ActionSchedule || *d[0].Window != w1 {
			t.Fatalf("diff = %+v", d)
		}
	})
	t.Run("change", func(t *testing.T) {
		desired := &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{withWin}}}}
		actual := &Actual{Clients: map[string]ActualClient{
			"phone": {Station: "st-a",
				Chains:  map[string]ActualChain{"fw": {Spec: withWin.ChainSpec, DeployedOn: "st-a", Settled: true}},
				Windows: map[string]manager.Window{"fw": w2}},
		}}
		d := Diff(desired, actual)
		if len(d) != 1 || d[0].Kind != ActionSchedule || *d[0].Window != w1 {
			t.Fatalf("diff = %+v", d)
		}
	})
	t.Run("remove", func(t *testing.T) {
		plain := chain("fw", "firewall", nil)
		desired := &Spec{Clients: []Client{{ID: "phone", Chains: []Chain{plain}}}}
		actual := &Actual{Clients: map[string]ActualClient{
			"phone": {Station: "st-a",
				Chains:  map[string]ActualChain{"fw": {Spec: plain.ChainSpec, DeployedOn: "st-a", Settled: true}},
				Windows: map[string]manager.Window{"fw": w1}},
		}}
		d := Diff(desired, actual)
		if len(d) != 1 || d[0].Kind != ActionUnschedule {
			t.Fatalf("diff = %+v", d)
		}
	})
}

func TestDiffPools(t *testing.T) {
	desired := &Spec{Pools: []PoolTarget{{Station: "st-a", Kinds: "firewall", ConfigHash: "h1", Replicas: 3}}}
	t.Run("scale", func(t *testing.T) {
		actual := &Actual{Clients: map[string]ActualClient{}, Pools: map[string][]PoolState{
			"st-a": {{Kinds: "firewall", ConfigHash: "h1", Refs: 2, Replicas: 1}},
		}}
		d := Diff(desired, actual)
		if len(d) != 1 || d[0].Kind != ActionScale || d[0].Replicas != 3 {
			t.Fatalf("diff = %+v", d)
		}
	})
	t.Run("at target", func(t *testing.T) {
		actual := &Actual{Clients: map[string]ActualClient{}, Pools: map[string][]PoolState{
			"st-a": {{Kinds: "firewall", ConfigHash: "h1", Refs: 2, Replicas: 3}},
		}}
		if d := Diff(desired, actual); len(d) != 0 {
			t.Fatalf("diff = %+v", d)
		}
	})
	t.Run("unreferenced pool deferred", func(t *testing.T) {
		actual := &Actual{Clients: map[string]ActualClient{}, Pools: map[string][]PoolState{
			"st-a": {{Kinds: "firewall", ConfigHash: "h1", Refs: 0, Replicas: 1}},
		}}
		if d := Diff(desired, actual); len(d) != 0 {
			t.Fatalf("diff = %+v, want empty (reaper owns unreferenced pools)", d)
		}
	})
	t.Run("absent pool deferred", func(t *testing.T) {
		actual := &Actual{Clients: map[string]ActualClient{}}
		if d := Diff(desired, actual); len(d) != 0 {
			t.Fatalf("diff = %+v, want empty", d)
		}
	})
}

func TestActionKeyStable(t *testing.T) {
	a := Action{Kind: ActionAttach, Client: "phone", ChainName: "fw", Reason: "first sighting"}
	b := Action{Kind: ActionAttach, Client: "phone", ChainName: "fw", Reason: "retry"}
	if a.Key() != b.Key() {
		t.Fatal("reason changed the action key; backoff would never find its entry")
	}
	c := Action{Kind: ActionDetach, Client: "phone", ChainName: "fw"}
	if a.Key() == c.Key() {
		t.Fatal("distinct actions share a key")
	}
}
