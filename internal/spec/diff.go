package spec

import (
	"fmt"
	"sort"

	"gnf/internal/manager"
)

// ActionKind names one imperative manager operation the diff can emit.
type ActionKind string

const (
	ActionAttach     ActionKind = "attach"
	ActionDetach     ActionKind = "detach"
	ActionMigrate    ActionKind = "migrate"
	ActionSchedule   ActionKind = "schedule"
	ActionUnschedule ActionKind = "unschedule"
	ActionOffload    ActionKind = "offload"
	ActionRecall     ActionKind = "recall"
	ActionScale      ActionKind = "scale"
)

// Action is one minimal imperative step closing part of the gap between
// desired and actual state.
type Action struct {
	Kind      ActionKind `json:"kind"`
	Client    string     `json:"client,omitempty"`
	ChainName string     `json:"chain,omitempty"`
	// Chain carries the full desired chain for attach (spec + schedule).
	Chain *Chain `json:"chain_spec,omitempty"`
	// Segment selects a split-chain segment for migrate actions: 0 is the
	// head (or a whole unsplit chain), >= 1 an anchored segment.
	Segment int `json:"segment,omitempty"`
	// Station is the migrate target (the client's current station for
	// heads, the planned anchor for segments).
	Station string `json:"station,omitempty"`
	// Site is the offload target cloud site.
	Site string `json:"site,omitempty"`
	// Window is the desired schedule window for schedule actions.
	Window *manager.Window `json:"window,omitempty"`
	// Kinds/ConfigHash/Replicas identify and size a pool for scale actions.
	Kinds      string `json:"kinds,omitempty"`
	ConfigHash string `json:"config_hash,omitempty"`
	Replicas   int    `json:"replicas,omitempty"`
	// Reason explains why the diff emitted the action — surfaced by
	// dry-run and gnfctl diff so operators can review a plan.
	Reason string `json:"reason,omitempty"`
}

// Key is the action's identity for retry/backoff bookkeeping: stable
// across reconcile passes as long as the same delta persists.
func (a Action) Key() string {
	return fmt.Sprintf("%s|%s|%s|%d|%s|%s|%s|%d", a.Kind, a.Client, a.ChainName, a.Segment, a.Station, a.Site, a.ConfigHash, a.Replicas)
}

func (a Action) String() string {
	switch a.Kind {
	case ActionScale:
		return fmt.Sprintf("scale %s %s -> %d replicas (%s)", a.Station, a.Kinds, a.Replicas, a.Reason)
	case ActionOffload:
		return fmt.Sprintf("offload %s -> %s (%s)", a.Client, a.Site, a.Reason)
	case ActionRecall:
		return fmt.Sprintf("recall %s (%s)", a.Client, a.Reason)
	case ActionMigrate:
		if a.Segment > 0 {
			return fmt.Sprintf("migrate %s/%s segment %d -> %s (%s)", a.Client, a.ChainName, a.Segment, a.Station, a.Reason)
		}
		return fmt.Sprintf("migrate %s/%s -> %s (%s)", a.Client, a.ChainName, a.Station, a.Reason)
	default:
		return fmt.Sprintf("%s %s/%s (%s)", a.Kind, a.Client, a.ChainName, a.Reason)
	}
}

// ActualChain is one observed attached chain.
type ActualChain struct {
	Spec       manager.ChainSpec
	DeployedOn string // head placement for split chains
	// Settled reports whether the chain's current placement satisfies the
	// desired invariant (co-located with the client, or within QoS budget
	// under an RTT-aware policy, or on its offload site).
	Settled bool
	// Segments maps anchored segment index (>= 1) to its hosting station
	// for split chains; nil otherwise.
	Segments map[int]string
	// SegmentPlan is the manager's desired station per segment at snapshot
	// time (index 0 = head); nil when the chain is unsplit or the client
	// is detached.
	SegmentPlan []string
}

// ActualClient is one observed client: where it is attached, whether it
// is offloaded, its chains and schedule windows.
type ActualClient struct {
	Station string
	Offload string
	Chains  map[string]ActualChain
	Windows map[string]manager.Window
}

// PoolState is one observed shared-instance pool on a station.
type PoolState struct {
	Kinds      string
	ConfigHash string
	Refs       int
	Replicas   int
}

// Actual is a point-in-time snapshot of observed system state, as built
// by the reconcile package from the Manager's query surface.
type Actual struct {
	Clients map[string]ActualClient
	Pools   map[string][]PoolState
}

// Diff computes the minimal ordered action list that moves actual toward
// desired. Ordering matters within a client: replaced chains detach
// before the new config attaches, and offload transitions recall before
// re-offloading elsewhere.
//
// Scope rules: the spec governs only the clients it lists — unlisted
// actual clients are untouched. Desired clients not present in the
// snapshot at all (never attached) are deferred, not errors: they
// converge once the client appears. Attach/offload/recall/migrate need a
// connected client (station != ""); detach and unschedule work
// regardless, because the manager accepts them for roaming-disconnected
// clients.
func Diff(desired *Spec, actual *Actual) []Action {
	var out []Action
	for _, dc := range desired.Clients {
		ac, ok := actual.Clients[dc.ID]
		if !ok {
			// Client never attached: nothing observable to act on yet.
			continue
		}
		out = append(out, diffClient(dc, ac)...)
	}
	out = append(out, diffPools(desired, actual)...)
	return out
}

func diffClient(dc Client, ac ActualClient) []Action {
	var out []Action
	desired := make(map[string]Chain, len(dc.Chains))
	for _, ch := range dc.Chains {
		desired[ch.Name] = ch
	}

	// Pass 1: existing chains — drop undesired ones, replace changed ones.
	// replaced remembers chains we detached this pass so the attach half of
	// a config change is emitted below alongside fresh attaches.
	replaced := map[string]bool{}
	for _, name := range sortedKeys(ac.Chains) {
		have := ac.Chains[name]
		want, ok := desired[name]
		if !ok {
			out = append(out, Action{Kind: ActionDetach, Client: dc.ID, ChainName: name,
				Reason: "chain not in desired spec"})
			continue
		}
		if ChainConfigHash(have.Spec) != ChainConfigHash(want.ChainSpec) {
			out = append(out, Action{Kind: ActionDetach, Client: dc.ID, ChainName: name,
				Reason: "chain config changed"})
			replaced[name] = true
		}
	}

	connected := ac.Station != ""

	// Pass 2: missing chains (and the attach half of replacements).
	if connected {
		for _, ch := range dc.Chains {
			_, have := ac.Chains[ch.Name]
			if have && !replaced[ch.Name] {
				continue
			}
			ch := ch
			reason := "chain missing"
			if replaced[ch.Name] {
				reason = "chain config changed"
			}
			out = append(out, Action{Kind: ActionAttach, Client: dc.ID, ChainName: ch.Name,
				Chain: &ch, Reason: reason})
		}
	}

	// Pass 3: offload transitions. A site change is recall first; the
	// re-offload lands on the next pass once the recall took effect.
	switch {
	case ac.Offload != "" && ac.Offload != dc.Offload:
		reason := "offload not desired"
		if dc.Offload != "" {
			reason = fmt.Sprintf("offload site change %s -> %s", ac.Offload, dc.Offload)
		}
		out = append(out, Action{Kind: ActionRecall, Client: dc.ID, Reason: reason})
	case ac.Offload == "" && dc.Offload != "" && connected:
		out = append(out, Action{Kind: ActionOffload, Client: dc.ID, Site: dc.Offload,
			Reason: "offload pinned in desired spec"})
	}

	inTransition := ac.Offload != dc.Offload

	// Pass 4: drift repair — a matching chain stranded off its settled
	// placement (orphan after agent rejoin, failed migration) migrates to
	// the client's station. Skipped mid offload-transition: the
	// recall/offload above already moves every chain.
	if connected && !inTransition && ac.Offload == "" {
		for _, name := range sortedKeys(ac.Chains) {
			have := ac.Chains[name]
			want, ok := desired[name]
			if !ok || replaced[name] {
				continue
			}
			if ChainConfigHash(have.Spec) != ChainConfigHash(want.ChainSpec) {
				continue
			}
			if !have.Settled {
				out = append(out, Action{Kind: ActionMigrate, Client: dc.ID, ChainName: name,
					Station: ac.Station, Reason: fmt.Sprintf("drifted to %s", have.DeployedOn)})
			}
			// Split chains: anchored segments drift independently of the
			// head, so each is checked against the manager's segment plan
			// (a lost or mis-placed anchor migrates back; MigrateSegment
			// cold-deploys when the segment is gone entirely).
			for i := 1; i < len(have.SegmentPlan); i++ {
				if at := have.Segments[i]; at != have.SegmentPlan[i] {
					out = append(out, Action{Kind: ActionMigrate, Client: dc.ID, ChainName: name,
						Segment: i, Station: have.SegmentPlan[i],
						Reason: fmt.Sprintf("segment %d drifted to %q", i, at)})
				}
			}
		}
	}

	// Pass 5: schedule windows, only for chains that already exist in
	// their desired config (a fresh attach carries its window itself).
	for _, ch := range dc.Chains {
		have, ok := ac.Chains[ch.Name]
		if !ok || replaced[ch.Name] {
			continue
		}
		if ChainConfigHash(have.Spec) != ChainConfigHash(ch.ChainSpec) {
			continue
		}
		actualWin, hasWin := ac.Windows[ch.Name]
		switch {
		case ch.Schedule != nil && (!hasWin || actualWin != *ch.Schedule):
			w := *ch.Schedule
			out = append(out, Action{Kind: ActionSchedule, Client: dc.ID, ChainName: ch.Name,
				Window: &w, Reason: "schedule window differs"})
		case ch.Schedule == nil && hasWin:
			out = append(out, Action{Kind: ActionUnschedule, Client: dc.ID, ChainName: ch.Name,
				Reason: "no schedule in desired spec"})
		}
	}
	return out
}

// diffPools emits scale actions for desired pool targets whose live pool
// (matched on station + kinds + config hash, with active refs) runs a
// different replica count. Targets with no live pool are deferred — a
// pool only exists while shared chains reference it.
func diffPools(desired *Spec, actual *Actual) []Action {
	var out []Action
	for _, pt := range desired.Pools {
		for _, ps := range actual.Pools[pt.Station] {
			if ps.Kinds != pt.Kinds || ps.ConfigHash != pt.ConfigHash || ps.Refs == 0 {
				continue
			}
			if ps.Replicas != pt.Replicas {
				out = append(out, Action{Kind: ActionScale, Station: pt.Station,
					Kinds: pt.Kinds, ConfigHash: pt.ConfigHash, Replicas: pt.Replicas,
					Reason: fmt.Sprintf("pool at %d replicas, want %d", ps.Replicas, pt.Replicas)})
			}
		}
	}
	return out
}

func sortedKeys(m map[string]ActualChain) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
