// Package spec defines GNF's declarative desired-state layer: a versioned
// Spec document describing what the fleet *should* look like — which
// clients carry which NF chains (with QoS budgets and activation
// schedules), which clients are pinned to cloud sites, how large shared
// instance pools should be, and which placement policy and migration
// strategy govern the manager — plus the semantic Diff that turns the gap
// between a Spec and an observed Actual snapshot into the minimal set of
// imperative actions. The reconcile package drives those actions; here
// lives only pure data, canonical hashing, validation, and the diff.
//
// The design follows the declarative controllers of related systems:
// sfc-controller renders chains from a versioned config and re-renders on
// change, metallb continuously reconciles watched config into speaker
// state. The Spec is the shared vocabulary between manager, UI, gnfctl,
// and the scenario engine.
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"gnf/internal/manager"
)

// Version is the current spec document format version.
const Version = 1

// Chain is one desired NF chain: the manager-level ChainSpec (name,
// functions, QoS budget) plus an optional activation window.
type Chain struct {
	manager.ChainSpec
	// Schedule registers an activation window for the chain; absolute
	// times, applied by the manager's schedule evaluator. nil = always on.
	Schedule *manager.Window `json:"schedule,omitempty"`
}

// Client is the desired state of one client: its chain set and an
// optional cloud offload pin.
type Client struct {
	ID string `json:"id"`
	// Offload pins the client's chains to a GNFC cloud site; "" means the
	// chains live at the edge and roam with the client.
	Offload string `json:"offload,omitempty"`
	// Chains is the authoritative chain set: chains attached to the client
	// but absent here are detached by reconciliation.
	Chains []Chain `json:"chains,omitempty"`
}

// PoolTarget pins a shared NF instance pool's replica count on a station.
// Pools are keyed the way agents key them: the canonical whole-chain
// config hash plus the readable kind signature.
type PoolTarget struct {
	Station    string `json:"station"`
	Kinds      string `json:"kinds"`
	ConfigHash string `json:"config_hash"`
	Replicas   int    `json:"replicas"`
}

// Spec is one complete desired-state document. Clients the spec does not
// list are left alone — partial ownership, so an operator can declare a
// fleet subset without mass-detaching everyone else's chains.
type Spec struct {
	// Version of the document format (0 is normalized to the current 1).
	Version int `json:"version,omitempty"`
	// Placement selects the manager's placement policy by registry name;
	// "" keeps whatever policy is active.
	Placement string `json:"placement,omitempty"`
	// Strategy selects the roaming migration strategy (cold, stateful,
	// live); "" keeps the active one.
	Strategy string   `json:"strategy,omitempty"`
	Clients  []Client `json:"clients,omitempty"`
	Pools    []PoolTarget `json:"pools,omitempty"`
}

// Clone deep-copies the spec (JSON round-trip: every field is data).
func (s *Spec) Clone() *Spec {
	raw, err := json.Marshal(s)
	if err != nil {
		// Spec is plain data; marshal cannot fail on a validated document.
		panic(fmt.Sprintf("spec: clone: %v", err))
	}
	var out Spec
	if err := json.Unmarshal(raw, &out); err != nil {
		panic(fmt.Sprintf("spec: clone: %v", err))
	}
	return &out
}

// Normalize puts the spec in canonical order — clients by ID, chains by
// name, pools by (station, kinds, hash) — and pins the version, so that
// two specs describing the same desired state hash identically regardless
// of declaration order.
func (s *Spec) Normalize() {
	if s.Version == 0 {
		s.Version = Version
	}
	sort.Slice(s.Clients, func(i, j int) bool { return s.Clients[i].ID < s.Clients[j].ID })
	for i := range s.Clients {
		chains := s.Clients[i].Chains
		sort.Slice(chains, func(a, b int) bool { return chains[a].Name < chains[b].Name })
	}
	sort.Slice(s.Pools, func(i, j int) bool {
		a, b := s.Pools[i], s.Pools[j]
		if a.Station != b.Station {
			return a.Station < b.Station
		}
		if a.Kinds != b.Kinds {
			return a.Kinds < b.Kinds
		}
		return a.ConfigHash < b.ConfigHash
	})
}

// Hash is the spec's canonical content hash: sha256 over the normalized
// JSON form (JSON map keys marshal sorted, so parameter maps are
// order-insensitive). Two specs with equal hashes describe the same
// desired state; the reconciler stamps convergence generations on hash
// changes.
func (s *Spec) Hash() string {
	c := s.Clone()
	c.Normalize()
	raw, _ := json.Marshal(c)
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// ChainConfigHash is the canonical content hash of one attached chain
// configuration (name, functions with parameters, QoS budget). The diff
// uses it to decide whether an attached chain matches its desired form or
// must be replaced.
func ChainConfigHash(cs manager.ChainSpec) string {
	raw, _ := json.Marshal(cs)
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// validStrategies mirrors the manager's spec-facing strategy set.
var validStrategies = map[string]bool{"cold": true, "stateful": true, "live": true}

// Validate checks structural consistency: unique IDs, non-empty chains,
// sane budgets and windows, known placement and strategy names.
func (s *Spec) Validate() error {
	if s.Version != 0 && s.Version != Version {
		return fmt.Errorf("spec: unsupported version %d (want %d)", s.Version, Version)
	}
	if s.Strategy != "" && !validStrategies[s.Strategy] {
		return fmt.Errorf("spec: unknown strategy %q (want cold, stateful or live)", s.Strategy)
	}
	if s.Placement != "" {
		if _, ok := manager.PlacementFor(s.Placement); !ok {
			return fmt.Errorf("spec: unknown placement %q (want one of %v)", s.Placement, manager.PlacementNames())
		}
	}
	clients := map[string]bool{}
	for _, c := range s.Clients {
		if c.ID == "" {
			return fmt.Errorf("spec: client with empty id")
		}
		if clients[c.ID] {
			return fmt.Errorf("spec: duplicate client %s", c.ID)
		}
		clients[c.ID] = true
		chains := map[string]bool{}
		for _, ch := range c.Chains {
			if ch.Name == "" {
				return fmt.Errorf("spec: client %s: chain with empty name", c.ID)
			}
			if chains[ch.Name] {
				return fmt.Errorf("spec: client %s: duplicate chain %s", c.ID, ch.Name)
			}
			chains[ch.Name] = true
			if len(ch.Functions) == 0 {
				return fmt.Errorf("spec: client %s: chain %s has no functions", c.ID, ch.Name)
			}
			for i, fn := range ch.Functions {
				if fn.Kind == "" {
					return fmt.Errorf("spec: client %s: chain %s function %d has no kind", c.ID, ch.Name, i)
				}
			}
			// Affinity tags: unknown values and layouts the segment runtime
			// cannot honour (near-client behind an anchored segment) are
			// spec errors, not attach-time surprises.
			if err := manager.ValidateSegments(ch.ChainSpec); err != nil {
				return fmt.Errorf("spec: client %s: %v", c.ID, err)
			}
			if ch.MaxRTTMs < 0 {
				return fmt.Errorf("spec: client %s: chain %s has negative max_rtt_ms", c.ID, ch.Name)
			}
			if w := ch.Schedule; w != nil {
				if w.EnableAt.IsZero() {
					return fmt.Errorf("spec: client %s: chain %s schedule has no enable_at", c.ID, ch.Name)
				}
				if !w.DisableAt.IsZero() && !w.DisableAt.After(w.EnableAt) {
					return fmt.Errorf("spec: client %s: chain %s schedule disables before it enables", c.ID, ch.Name)
				}
			}
		}
	}
	pools := map[string]bool{}
	for _, p := range s.Pools {
		if p.Station == "" || p.ConfigHash == "" || p.Kinds == "" {
			return fmt.Errorf("spec: pool target needs station, kinds and config_hash")
		}
		if p.Replicas < 1 {
			return fmt.Errorf("spec: pool %s/%s needs replicas >= 1, got %d", p.Station, p.Kinds, p.Replicas)
		}
		key := p.Station + "|" + p.Kinds + "|" + p.ConfigHash
		if pools[key] {
			return fmt.Errorf("spec: duplicate pool target %s/%s", p.Station, p.Kinds)
		}
		pools[key] = true
	}
	return nil
}
