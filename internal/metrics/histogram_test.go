package metrics

import (
	"math"
	"testing"
)

func TestHistogramBucketsAndStats(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.Min != 0.5 || snap.Max != 500 {
		t.Fatalf("min/max = %f/%f", snap.Min, snap.Max)
	}
	if want := (0.5 + 1 + 5 + 50 + 500) / 5; snap.Mean != want {
		t.Fatalf("mean = %f, want %f", snap.Mean, want)
	}
	if len(snap.Buckets) != 4 {
		t.Fatalf("buckets = %+v", snap.Buckets)
	}
	// 0.5 and 1 land in le=1 (upper bounds are inclusive); 5 in le=10; 50
	// in le=100; 500 overflows.
	wantCounts := []uint64{2, 1, 1, 1}
	for i, b := range snap.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d = %+v, want count %d", i, b, wantCounts[i])
		}
	}
	if last := snap.Buckets[3].UpperBound; last != math.MaxFloat64 {
		t.Fatalf("overflow bound = %f", last)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	snap := NewHistogram(1, 2).Snapshot()
	if snap.Count != 0 || snap.Mean != 0 || snap.Sum != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
}

func TestRegistryHistogramReuseAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("migration.downtime_ms", 1, 10)
	h2 := r.Histogram("migration.downtime_ms", 99) // existing keeps its buckets
	if h1 != h2 {
		t.Fatal("registry created duplicate histograms")
	}
	h1.Observe(3)
	snap := r.Snapshot()
	hs, ok := snap.Histograms["migration.downtime_ms"]
	if !ok || hs.Count != 1 || len(hs.Buckets) != 3 {
		t.Fatalf("snapshot histogram = %+v (ok=%v)", hs, ok)
	}
	found := false
	for _, n := range r.Names() {
		if n == "histogram:migration.downtime_ms" {
			found = true
		}
	}
	if !found {
		t.Fatalf("names missing histogram: %v", r.Names())
	}
}
