package metrics

import (
	"math"
	"testing"
)

func TestHistogramBucketsAndStats(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.Min != 0.5 || snap.Max != 500 {
		t.Fatalf("min/max = %f/%f", snap.Min, snap.Max)
	}
	if want := (0.5 + 1 + 5 + 50 + 500) / 5; snap.Mean != want {
		t.Fatalf("mean = %f, want %f", snap.Mean, want)
	}
	if len(snap.Buckets) != 4 {
		t.Fatalf("buckets = %+v", snap.Buckets)
	}
	// 0.5 and 1 land in le=1 (upper bounds are inclusive); 5 in le=10; 50
	// in le=100; 500 overflows.
	wantCounts := []uint64{2, 1, 1, 1}
	for i, b := range snap.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d = %+v, want count %d", i, b, wantCounts[i])
		}
	}
	if last := snap.Buckets[3].UpperBound; last != math.MaxFloat64 {
		t.Fatalf("overflow bound = %f", last)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	snap := NewHistogram(1, 2).Snapshot()
	if snap.Count != 0 || snap.Mean != 0 || snap.Sum != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
}

func TestRegistryHistogramReuseAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("migration.downtime_ms", 1, 10)
	h2 := r.Histogram("migration.downtime_ms", 99) // existing keeps its buckets
	if h1 != h2 {
		t.Fatal("registry created duplicate histograms")
	}
	h1.Observe(3)
	snap := r.Snapshot()
	hs, ok := snap.Histograms["migration.downtime_ms"]
	if !ok || hs.Count != 1 || len(hs.Buckets) != 3 {
		t.Fatalf("snapshot histogram = %+v (ok=%v)", hs, ok)
	}
	found := false
	for _, n := range r.Names() {
		if n == "histogram:migration.downtime_ms" {
			found = true
		}
	}
	if !found {
		t.Fatalf("names missing histogram: %v", r.Names())
	}
}

// TestHistogramQuantileUniform checks the interpolated quantiles against a
// known distribution: 100 observations uniform over (0, 100] into 10-wide
// buckets. The true p-th quantile of that sample is ~100p, and linear
// interpolation inside a uniformly filled bucket should land on it.
func TestHistogramQuantileUniform(t *testing.T) {
	h := NewHistogram(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct{ p, want, tol float64 }{
		{0.50, 50, 1},
		{0.90, 90, 1},
		{0.99, 99, 1},
		{0, 1, 0},   // p<=0 reports the observed min
		{1, 100, 0}, // p>=1 reports the observed max
	} {
		if got := h.Quantile(tc.p); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%v) = %v, want %v±%v", tc.p, got, tc.want, tc.tol)
		}
	}
}

// TestHistogramQuantileSkewed pins the estimator on a skewed distribution:
// 99 fast observations and one huge outlier. p99 must sit inside the
// bucket holding rank 99 — not be dragged to the outlier — while the max
// still reports it.
func TestHistogramQuantileSkewed(t *testing.T) {
	h := NewHistogram(1, 5, 10, 100)
	for i := 0; i < 99; i++ {
		h.Observe(0.5)
	}
	h.Observe(5000) // overflow-bucket outlier
	p99 := h.Quantile(0.99)
	if p99 < 0.5 || p99 > 1 {
		t.Fatalf("p99 = %v, want within the le=1 bucket", p99)
	}
	// The overflow bucket interpolates toward the observed max, clamped.
	p999 := h.Quantile(0.999)
	if p999 < 1 || p999 > 5000 {
		t.Fatalf("p0.999 = %v, want in (1, 5000]", p999)
	}
	if h.Quantile(1) != 5000 {
		t.Fatalf("max quantile = %v, want 5000", h.Quantile(1))
	}
}

// TestHistogramQuantileEmptyAndSingle covers the degenerate shapes.
func TestHistogramQuantileEmptyAndSingle(t *testing.T) {
	if got := NewHistogram(1, 2).Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	h := NewHistogram(1, 2)
	h.Observe(1.5)
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(p); got != 1.5 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 1.5 (clamped to min/max)", p, got)
		}
	}
}

// TestHistogramSnapshotQuantiles asserts p50/p90/p99 ride the snapshot —
// the fields /api/migrations and /metrics surface.
func TestHistogramSnapshotQuantiles(t *testing.T) {
	h := NewHistogram(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	snap := h.Snapshot()
	if math.Abs(snap.P50-50) > 1 || math.Abs(snap.P90-90) > 1 || math.Abs(snap.P99-99) > 1 {
		t.Fatalf("snapshot quantiles = %v/%v/%v, want ~50/90/99", snap.P50, snap.P90, snap.P99)
	}
	if snap.P50 > snap.P90 || snap.P90 > snap.P99 {
		t.Fatalf("quantiles not monotone: %v/%v/%v", snap.P50, snap.P90, snap.P99)
	}
}
