// Package metrics implements the lightweight monitoring substrate that the
// GNF Manager uses to track per-station health and resource utilisation
// (§3 of the paper: "continuously monitoring the health and resource
// utilization from the GNF stations"), and that the UI renders.
//
// It provides atomic counters and gauges, fixed-window rolling time series,
// and a named registry with stable snapshot export. Everything is safe for
// concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Series is a fixed-capacity ring of timestamped float64 samples, e.g. a
// station's CPU load over the last N reporting intervals.
type Series struct {
	mu   sync.Mutex
	cap  int
	data []Sample
	head int // index of oldest sample
	n    int
}

// Sample is one timestamped observation.
type Sample struct {
	At    time.Time `json:"at"`
	Value float64   `json:"value"`
}

// NewSeries returns a rolling series holding at most capacity samples.
// Capacity below 1 is raised to 1.
func NewSeries(capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{cap: capacity, data: make([]Sample, capacity)}
}

// Record appends a sample, evicting the oldest when full.
func (s *Series) Record(at time.Time, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := (s.head + s.n) % s.cap
	if s.n == s.cap {
		s.data[s.head] = Sample{at, v}
		s.head = (s.head + 1) % s.cap
		return
	}
	s.data[idx] = Sample{at, v}
	s.n++
}

// Len returns the number of stored samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Samples returns stored samples oldest-first.
func (s *Series) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = s.data[(s.head+i)%s.cap]
	}
	return out
}

// Last returns the most recent sample and true, or false when empty.
func (s *Series) Last() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Sample{}, false
	}
	return s.data[(s.head+s.n-1)%s.cap], true
}

// Stats summarises a series.
type Stats struct {
	Count          int
	Min, Max, Mean float64
}

// Stats computes min/max/mean over the stored samples.
func (s *Series) Stats() Stats {
	samples := s.Samples()
	st := Stats{Count: len(samples)}
	if st.Count == 0 {
		return st
	}
	st.Min = math.Inf(1)
	st.Max = math.Inf(-1)
	var sum float64
	for _, sm := range samples {
		if sm.Value < st.Min {
			st.Min = sm.Value
		}
		if sm.Value > st.Max {
			st.Max = sm.Value
		}
		sum += sm.Value
	}
	st.Mean = sum / float64(st.Count)
	return st
}

// Histogram is a fixed-bucket distribution: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf overflow bucket. Bounds are set at construction and never change —
// the migration downtime/state-size distributions the manager exports.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds (exclusive of +Inf)
	counts []uint64  // len(bounds)+1; last is the overflow bucket
	total  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over ascending bucket upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	return &Histogram{bounds: sorted, counts: make([]uint64, len(sorted)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx]++
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total++
	h.sum += v
}

// Quantile estimates the p-th quantile (p in [0,1]) of the observed
// distribution by linear interpolation inside the bucket holding the
// target rank — the standard bucketed-histogram estimator. The result is
// clamped to the observed [min, max], so the overflow bucket (and a rank
// landing in the first bucket) cannot produce values the histogram never
// saw. An empty histogram reports 0.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(p)
}

func (h *Histogram) quantileLocked(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	rank := p * float64(h.total)
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		// Rank lands in bucket i: interpolate between its bounds.
		lower := h.min
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.max
		if i < len(h.bounds) {
			upper = h.bounds[i]
		}
		v := lower + (upper-lower)*(rank-prev)/float64(c)
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// HistogramBucket is one bucket of a snapshot; UpperBound is +Inf for the
// overflow bucket (marshalled as null by encoding/json users should treat
// the final bucket as the overflow).
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramSnapshot is a stable export of a histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Tail quantiles (bucket-interpolated): the latency figures operators
	// actually watch, surfaced in /api/migrations and /metrics.
	P50     float64           `json:"p50"`
	P90     float64           `json:"p90"`
	P99     float64           `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot exports the histogram's current distribution. The overflow
// bucket is reported with UpperBound = math.MaxFloat64 so the JSON stays
// finite.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.total, Sum: h.sum, Min: h.min, Max: h.max}
	if h.total > 0 {
		snap.Mean = h.sum / float64(h.total)
		snap.P50 = h.quantileLocked(0.50)
		snap.P90 = h.quantileLocked(0.90)
		snap.P99 = h.quantileLocked(0.99)
	}
	snap.Buckets = make([]HistogramBucket, 0, len(h.counts))
	for i, c := range h.counts {
		ub := math.MaxFloat64
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		snap.Buckets = append(snap.Buckets, HistogramBucket{UpperBound: ub, Count: c})
	}
	return snap
}

// Registry is a flat namespace of counters, gauges, series and histograms.
// Metric names follow "subsystem.metric" convention, e.g.
// "switch.rx_frames".
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	series     map[string]*Series
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		series:     make(map[string]*Series),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Series returns (creating if needed) the named series with the given
// capacity; an existing series keeps its original capacity.
func (r *Registry) Series(name string, capacity int) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(capacity)
		r.series[name] = s
	}
	return s
}

// Histogram returns (creating if needed) the named histogram with the given
// bucket bounds; an existing histogram keeps its original buckets.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a stable, JSON-friendly export of a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Series     map[string]float64           `json:"series,omitempty"` // last value per series
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports current values. Series report their latest sample.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Series:     make(map[string]float64, len(r.series)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, s := range r.series {
		if last, ok := s.Last(); ok {
			snap.Series[n] = last.Value
		}
	}
	for n, h := range r.histograms {
		snap.Histograms[n] = h.Snapshot()
	}
	return snap
}

// Names returns all registered metric names, sorted, prefixed by kind
// ("counter:", "gauge:", "series:", "histogram:"). Primarily for
// debugging and the UI.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.series)+len(r.histograms))
	for n := range r.counters {
		out = append(out, "counter:"+n)
	}
	for n := range r.gauges {
		out = append(out, "gauge:"+n)
	}
	for n := range r.series {
		out = append(out, "series:"+n)
	}
	for n := range r.histograms {
		out = append(out, "histogram:"+n)
	}
	sort.Strings(out)
	return out
}

// ResourceUsage models the utilisation vector a GNF station reports: the
// paper's UI shows "network traffic, CPU load, memory usage" per station.
type ResourceUsage struct {
	CPUPercent  float64 `json:"cpu_percent"`  // 0..100 * cores
	MemoryBytes uint64  `json:"memory_bytes"` // resident bytes in use
	RxBytes     uint64  `json:"rx_bytes"`     // cumulative
	TxBytes     uint64  `json:"tx_bytes"`     // cumulative
	Containers  int     `json:"containers"`   // running NF containers
}

// Add returns the element-wise sum of u and v (cumulative fields add;
// instantaneous fields add too, since they are per-entity loads).
func (u ResourceUsage) Add(v ResourceUsage) ResourceUsage {
	return ResourceUsage{
		CPUPercent:  u.CPUPercent + v.CPUPercent,
		MemoryBytes: u.MemoryBytes + v.MemoryBytes,
		RxBytes:     u.RxBytes + v.RxBytes,
		TxBytes:     u.TxBytes + v.TxBytes,
		Containers:  u.Containers + v.Containers,
	}
}

// String implements fmt.Stringer for log lines.
func (u ResourceUsage) String() string {
	return fmt.Sprintf("cpu=%.1f%% mem=%dB rx=%dB tx=%dB nfs=%d",
		u.CPUPercent, u.MemoryBytes, u.RxBytes, u.TxBytes, u.Containers)
}

// Percentile returns the p-th percentile (0..100) of ds using nearest-rank,
// or 0 for an empty slice. Used by benches to report latency distributions.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
