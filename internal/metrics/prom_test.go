package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestWritePromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("migration.count").Add(3)
	r.Gauge("switch.flow_entries.st-a").Set(42)
	r.Series("switch.cache_hit_ratio.st-a", 4).Record(time.Unix(0, 0), 0.875)
	h := r.Histogram("migration.downtime_ms", 1, 10)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE gnf_migration_count_total counter",
		"gnf_migration_count_total 3",
		"# TYPE gnf_switch_flow_entries_st_a gauge",
		"gnf_switch_flow_entries_st_a 42",
		"gnf_switch_cache_hit_ratio_st_a 0.875",
		"# TYPE gnf_migration_downtime_ms histogram",
		`gnf_migration_downtime_ms_bucket{le="1"} 1`,
		`gnf_migration_downtime_ms_bucket{le="10"} 2`,
		`gnf_migration_downtime_ms_bucket{le="+Inf"} 3`,
		"gnf_migration_downtime_ms_sum 55.5",
		"gnf_migration_downtime_ms_count 3",
		"gnf_migration_downtime_ms_p99",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the +Inf bucket equals the count.
	if strings.Contains(out, `_bucket{le="+Inf"} 1`) {
		t.Fatalf("buckets look non-cumulative:\n%s", out)
	}
}
