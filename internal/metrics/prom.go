package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// WriteProm renders a registry snapshot in the Prometheus text exposition
// format (version 0.0.4) for GET /metrics. The registry's flat
// "subsystem.metric" (and per-station "subsystem.metric.station") names
// are mapped onto Prometheus conventions:
//
//   - dots become underscores and every name gains a "gnf_" prefix;
//   - counters get a "_total" suffix;
//   - series export their latest sample as a gauge;
//   - histograms export cumulative "_bucket{le=...}" lines plus "_sum",
//     "_count" and interpolated gnf_<name>_p{50,90,99} gauges.
//
// Output is sorted by metric name, so scrapes are diffable.
func WriteProm(w io.Writer, snap Snapshot) error {
	var b strings.Builder

	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[n])
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[n])
	}

	names = names[:0]
	for n := range snap.Series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", pn, pn, snap.Series[n])
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		// Registry buckets hold per-bucket counts; Prometheus buckets are
		// cumulative with an explicit +Inf terminal.
		var cum uint64
		for _, bk := range h.Buckets {
			cum += bk.Count
			le := "+Inf"
			if bk.UpperBound < math.MaxFloat64 {
				le = fmt.Sprintf("%g", bk.UpperBound)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", pn, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.Count)
		for _, q := range []struct {
			suffix string
			v      float64
		}{{"p50", h.P50}, {"p90", h.P90}, {"p99", h.P99}} {
			fmt.Fprintf(&b, "# TYPE %s_%s gauge\n%s_%s %g\n", pn, q.suffix, pn, q.suffix, q.v)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// promName sanitises a registry name into a Prometheus metric name.
func promName(n string) string {
	var b strings.Builder
	b.WriteString("gnf_")
	for i := 0; i < len(n); i++ {
		c := n[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
