package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
}

func TestGaugeAddSet(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestSeriesRollover(t *testing.T) {
	s := NewSeries(3)
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		s.Record(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []float64{2, 3, 4} {
		if got[i].Value != want {
			t.Fatalf("sample[%d] = %v, want %v", i, got[i].Value, want)
		}
	}
	last, ok := s.Last()
	if !ok || last.Value != 4 {
		t.Fatalf("Last = %v, %v", last, ok)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(0) // capacity raised to 1
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series returned ok")
	}
	if st := s.Stats(); st.Count != 0 {
		t.Fatalf("Stats on empty = %+v", st)
	}
	s.Record(time.Now(), 1)
	s.Record(time.Now(), 2)
	if s.Len() != 1 {
		t.Fatalf("capacity-1 series holds %d", s.Len())
	}
}

func TestSeriesStats(t *testing.T) {
	s := NewSeries(10)
	for _, v := range []float64{4, 2, 6} {
		s.Record(time.Now(), v)
	}
	st := s.Stats()
	if st.Count != 3 || st.Min != 2 || st.Max != 6 || st.Mean != 4 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestRegistryIdempotentLookups(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter not idempotent")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("Gauge not idempotent")
	}
	if r.Series("c", 4) != r.Series("c", 99) {
		t.Fatal("Series not idempotent")
	}
}

func TestRegistrySnapshotAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("rx").Add(5)
	r.Gauge("load").Set(-2)
	r.Series("cpu", 4).Record(time.Now(), 55.5)
	snap := r.Snapshot()
	if snap.Counters["rx"] != 5 || snap.Gauges["load"] != -2 || snap.Series["cpu"] != 55.5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	names := r.Names()
	want := []string{"counter:rx", "gauge:load", "series:cpu"}
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestResourceUsageAdd(t *testing.T) {
	a := ResourceUsage{CPUPercent: 10, MemoryBytes: 100, RxBytes: 1, TxBytes: 2, Containers: 1}
	b := ResourceUsage{CPUPercent: 5, MemoryBytes: 50, RxBytes: 3, TxBytes: 4, Containers: 2}
	sum := a.Add(b)
	if sum.CPUPercent != 15 || sum.MemoryBytes != 150 || sum.RxBytes != 4 || sum.TxBytes != 6 || sum.Containers != 3 {
		t.Fatalf("Add = %+v", sum)
	}
	if sum.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1}, {50, 3}, {100, 5}, {90, 5}, {20, 1},
	}
	for _, c := range cases {
		if got := Percentile(ds, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}

// Property: series never stores more than capacity and always returns the
// most recent values in order.
func TestSeriesBoundedProperty(t *testing.T) {
	f := func(vals []float64, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		s := NewSeries(capacity)
		for i, v := range vals {
			s.Record(time.Unix(int64(i), 0), v)
		}
		got := s.Samples()
		if len(got) > capacity {
			return false
		}
		// Tail of vals must equal got.
		start := len(vals) - len(got)
		for i := range got {
			if got[i].Value != vals[start+i] && !(got[i].Value != got[i].Value && vals[start+i] != vals[start+i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, p1, p2 uint8) bool {
		ds := make([]time.Duration, len(raw))
		for i, r := range raw {
			ds[i] = time.Duration(r)
		}
		lo, hi := float64(p1%101), float64(p2%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		return Percentile(ds, lo) <= Percentile(ds, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryNamesAllKinds is the regression test for the Names()
// under-capacity bug: the preallocated slice omitted histograms from its
// capacity (and the doc from its kinds), so the histogram entries were the
// easy ones to forget. All four metric kinds must appear.
func TestRegistryNamesAllKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("rx").Inc()
	r.Gauge("load").Set(1)
	r.Series("cpu", 4).Record(time.Now(), 1)
	r.Histogram("lat", 1, 10).Observe(3)
	names := r.Names()
	want := []string{"counter:rx", "gauge:load", "histogram:lat", "series:cpu"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}
