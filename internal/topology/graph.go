// The station graph: the network *between* stations, which the plain
// cell/station/client model above deliberately omits. Nodes are stations
// (edge boxes and GNFC cloud sites), undirected edges are links with a
// propagation delay and a capacity, and the graph maintains an all-pairs
// latency matrix plus next-hop table so placement policies can rank
// candidate stations by predicted client<->chain RTT (Forti et al.,
// "Probabilistic QoS-aware Placement of VNF chains at the Edge").
//
// The matrix is kept current on every mutation: a new or faster link only
// relaxes existing entries (O(n²) — no recomputation from scratch), while
// a slowed or removed link triggers a full Floyd-Warshall rebuild, the
// only case where previously-optimal paths can get worse.

package topology

import (
	"sort"
	"sync"
	"time"
)

// Link is one undirected edge of the station graph.
type Link struct {
	A, B StationID
	// Delay is the link's one-way propagation delay.
	Delay time.Duration
	// RateBps is the link capacity in bits/s (0 = unconstrained).
	RateBps int64
}

// Graph is a mutable station graph with an always-current all-pairs
// latency matrix. All methods are safe for concurrent use.
type Graph struct {
	mu   sync.RWMutex
	adj  map[StationID]map[StationID]Link
	dist map[StationID]map[StationID]time.Duration
	next map[StationID]map[StationID]StationID
}

// NewGraph creates an empty station graph.
func NewGraph() *Graph {
	return &Graph{
		adj:  make(map[StationID]map[StationID]Link),
		dist: make(map[StationID]map[StationID]time.Duration),
		next: make(map[StationID]map[StationID]StationID),
	}
}

// AddNode registers a station with no links yet (idempotent).
func (g *Graph) AddNode(id StationID) {
	g.mu.Lock()
	g.addNodeLocked(id)
	g.mu.Unlock()
}

func (g *Graph) addNodeLocked(id StationID) {
	if _, ok := g.adj[id]; ok {
		return
	}
	g.adj[id] = make(map[StationID]Link)
	// An isolated node reaches only itself; no existing entry changes.
	g.dist[id] = map[StationID]time.Duration{id: 0}
	g.next[id] = map[StationID]StationID{id: id}
}

// SetLink adds or updates the undirected link between l.A and l.B,
// registering unknown endpoints. A new or faster link relaxes the latency
// matrix in place; a slower one forces a full rebuild.
func (g *Graph) SetLink(l Link) {
	if l.A == l.B {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addNodeLocked(l.A)
	g.addNodeLocked(l.B)
	old, had := g.adj[l.A][l.B]
	g.adj[l.A][l.B] = l
	g.adj[l.B][l.A] = Link{A: l.B, B: l.A, Delay: l.Delay, RateBps: l.RateBps}
	switch {
	case had && l.Delay == old.Delay:
		// Same weight (rate changes don't affect latency): matrix holds.
	case !had || l.Delay < old.Delay:
		g.relaxLocked(l.A, l.B, l.Delay)
	default:
		g.rebuildLocked()
	}
}

// RemoveLink deletes the link between a and b, if present.
func (g *Graph) RemoveLink(a, b StationID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.adj[a][b]; !ok {
		return
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	g.rebuildLocked()
}

// relaxLocked folds one new/improved edge (u,v,w) into the matrix: any
// pair whose best path improves by crossing the edge — in either
// direction — is updated, and nothing else moves.
func (g *Graph) relaxLocked(u, v StationID, w time.Duration) {
	nodes := g.nodesLocked()
	for _, pair := range [2][2]StationID{{u, v}, {v, u}} {
		a, b := pair[0], pair[1]
		if cur, ok := g.dist[a][b]; !ok || w < cur {
			g.dist[a][b] = w
			g.next[a][b] = b
		}
		for _, i := range nodes {
			dia, ok := g.dist[i][a]
			if !ok {
				continue
			}
			for _, j := range nodes {
				dbj, ok := g.dist[b][j]
				if !ok {
					continue
				}
				cand := dia + w + dbj
				if cur, ok := g.dist[i][j]; !ok || cand < cur {
					g.dist[i][j] = cand
					if i == a {
						g.next[i][j] = b
					} else {
						g.next[i][j] = g.next[i][a]
					}
				}
			}
		}
	}
}

// rebuildLocked recomputes the full matrix (Floyd-Warshall over the
// sorted node list, so equal-cost ties break deterministically).
func (g *Graph) rebuildLocked() {
	nodes := g.nodesLocked()
	g.dist = make(map[StationID]map[StationID]time.Duration, len(nodes))
	g.next = make(map[StationID]map[StationID]StationID, len(nodes))
	for _, i := range nodes {
		g.dist[i] = map[StationID]time.Duration{i: 0}
		g.next[i] = map[StationID]StationID{i: i}
	}
	for _, i := range nodes {
		for peer, l := range g.adj[i] {
			if cur, ok := g.dist[i][peer]; !ok || l.Delay < cur {
				g.dist[i][peer] = l.Delay
				g.next[i][peer] = peer
			}
		}
	}
	for _, k := range nodes {
		for _, i := range nodes {
			dik, ok := g.dist[i][k]
			if !ok {
				continue
			}
			for _, j := range nodes {
				dkj, ok := g.dist[k][j]
				if !ok {
					continue
				}
				if cur, ok := g.dist[i][j]; !ok || dik+dkj < cur {
					g.dist[i][j] = dik + dkj
					g.next[i][j] = g.next[i][k]
				}
			}
		}
	}
}

// Latency returns the one-way propagation delay of the best path between
// a and b; ok is false when either node is unknown or unreachable.
func (g *Graph) Latency(a, b StationID) (time.Duration, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	d, ok := g.dist[a][b]
	return d, ok
}

// RTT returns the predicted round-trip between a and b (twice the best
// one-way delay; 0,true for a == b).
func (g *Graph) RTT(a, b StationID) (time.Duration, bool) {
	d, ok := g.Latency(a, b)
	return 2 * d, ok
}

// Path returns the station sequence of the best path from a to b,
// inclusive of both ends; ok is false when unreachable.
func (g *Graph) Path(a, b StationID) ([]StationID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.dist[a][b]; !ok {
		return nil, false
	}
	path := []StationID{a}
	for cur := a; cur != b; {
		hop, ok := g.next[cur][b]
		if !ok || hop == cur {
			return nil, false
		}
		path = append(path, hop)
		cur = hop
	}
	return path, true
}

// Nodes lists registered stations, sorted.
func (g *Graph) Nodes() []StationID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodesLocked()
}

func (g *Graph) nodesLocked() []StationID {
	out := make([]StationID, 0, len(g.adj))
	for id := range g.adj {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Links lists every undirected link exactly once, sorted by endpoint
// names — the wiring list the core layer instantiates netem links from.
func (g *Graph) Links() []Link {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Link
	for a, peers := range g.adj {
		for b, l := range peers {
			if a < b {
				out = append(out, Link{A: a, B: b, Delay: l.Delay, RateBps: l.RateBps})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Ring links the stations into a cycle with a uniform per-hop shape — the
// classic metro-ring aggregation layout.
func Ring(ids []StationID, hopDelay time.Duration, rateBps int64) *Graph {
	g := NewGraph()
	for _, id := range ids {
		g.AddNode(id)
	}
	if len(ids) < 2 {
		return g
	}
	for i, id := range ids {
		peer := ids[(i+1)%len(ids)]
		if id != peer {
			g.SetLink(Link{A: id, B: peer, Delay: hopDelay, RateBps: rateBps})
		}
	}
	return g
}

// Tree links the stations as a complete binary tree rooted at ids[0] —
// the access/aggregation/core hierarchy of a wired ISP edge.
func Tree(ids []StationID, hopDelay time.Duration, rateBps int64) *Graph {
	g := NewGraph()
	for _, id := range ids {
		g.AddNode(id)
	}
	for i := 1; i < len(ids); i++ {
		g.SetLink(Link{A: ids[(i-1)/2], B: ids[i], Delay: hopDelay, RateBps: rateBps})
	}
	return g
}

// FatEdge fully meshes the stations — every pair one hop apart, the
// dense-interconnect upper bound latency-aware placement is compared
// against.
func FatEdge(ids []StationID, hopDelay time.Duration, rateBps int64) *Graph {
	g := NewGraph()
	for _, id := range ids {
		g.AddNode(id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			g.SetLink(Link{A: ids[i], B: ids[j], Delay: hopDelay, RateBps: rateBps})
		}
	}
	return g
}
