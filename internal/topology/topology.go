// Package topology models the edge network of Fig. 1: cells (wireless
// coverage areas), the GNF stations serving them (home routers, access
// points, gateways), and the mobile clients that associate with cells and
// roam between them. Geometry is a simple 2D plane; association follows
// nearest-cell-in-range, which is all the mobility use-case of §4 needs.
package topology

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"gnf/internal/packet"
)

// Identifiers. Stations host NFs; cells are coverage areas served by
// exactly one station (a station may serve several cells).
type (
	// CellID names a coverage cell.
	CellID string
	// StationID names a GNF station (an Agent host).
	StationID string
	// ClientID names a mobile client.
	ClientID string
)

// Point is a position on the 2D plane, in metres.
type Point struct{ X, Y float64 }

// Distance returns the Euclidean distance to q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Cell is one coverage area.
type Cell struct {
	ID      CellID
	Station StationID // serving station
	Center  Point
	Radius  float64 // coverage radius in metres
}

// Station is one GNF host at the edge.
type Station struct {
	ID          StationID
	ControlAddr string // where its Agent listens (host:port)
	MemoryBytes uint64 // capacity hint for placement
	Position    Point
}

// Client is one mobile device.
type Client struct {
	ID       ClientID
	MAC      packet.MAC
	IP       packet.IP
	Position Point
	Attached CellID // empty = not associated
}

// AssociationEvent reports a client's attachment change. From is empty on
// first association; To is empty on disassociation.
type AssociationEvent struct {
	Client   ClientID
	From, To CellID
}

// Errors returned by the topology.
var (
	ErrUnknownCell    = errors.New("topology: unknown cell")
	ErrUnknownStation = errors.New("topology: unknown station")
	ErrUnknownClient  = errors.New("topology: unknown client")
	ErrDuplicateID    = errors.New("topology: duplicate id")
)

// Topology is the mutable edge map. All methods are safe for concurrent
// use; association listeners are invoked synchronously (without the lock).
type Topology struct {
	mu        sync.RWMutex
	cells     map[CellID]*Cell
	stations  map[StationID]*Station
	clients   map[ClientID]*Client
	listeners []func(AssociationEvent)
}

// New creates an empty topology.
func New() *Topology {
	return &Topology{
		cells:    make(map[CellID]*Cell),
		stations: make(map[StationID]*Station),
		clients:  make(map[ClientID]*Client),
	}
}

// OnAssociation registers a listener for attachment changes.
func (t *Topology) OnAssociation(fn func(AssociationEvent)) {
	t.mu.Lock()
	t.listeners = append(t.listeners, fn)
	t.mu.Unlock()
}

// AddStation registers a station.
func (t *Topology) AddStation(s Station) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.stations[s.ID]; dup {
		return fmt.Errorf("%w: station %s", ErrDuplicateID, s.ID)
	}
	t.stations[s.ID] = &s
	return nil
}

// AddCell registers a cell served by an existing station.
func (t *Topology) AddCell(c Cell) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.cells[c.ID]; dup {
		return fmt.Errorf("%w: cell %s", ErrDuplicateID, c.ID)
	}
	if _, ok := t.stations[c.Station]; !ok {
		return fmt.Errorf("%w: %s (for cell %s)", ErrUnknownStation, c.Station, c.ID)
	}
	t.cells[c.ID] = &c
	return nil
}

// AddClient registers a client (initially unassociated).
func (t *Topology) AddClient(c Client) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.clients[c.ID]; dup {
		return fmt.Errorf("%w: client %s", ErrDuplicateID, c.ID)
	}
	c.Attached = ""
	t.clients[c.ID] = &c
	return nil
}

// Cell returns a copy of the named cell.
func (t *Topology) Cell(id CellID) (Cell, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.cells[id]
	if !ok {
		return Cell{}, fmt.Errorf("%w: %s", ErrUnknownCell, id)
	}
	return *c, nil
}

// Station returns a copy of the named station.
func (t *Topology) Station(id StationID) (Station, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, ok := t.stations[id]
	if !ok {
		return Station{}, fmt.Errorf("%w: %s", ErrUnknownStation, id)
	}
	return *s, nil
}

// Client returns a copy of the named client.
func (t *Topology) Client(id ClientID) (Client, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.clients[id]
	if !ok {
		return Client{}, fmt.Errorf("%w: %s", ErrUnknownClient, id)
	}
	return *c, nil
}

// Cells lists cells sorted by ID.
func (t *Topology) Cells() []Cell {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Cell, 0, len(t.cells))
	for _, c := range t.cells {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stations lists stations sorted by ID.
func (t *Topology) Stations() []Station {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Station, 0, len(t.stations))
	for _, s := range t.stations {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Clients lists clients sorted by ID.
func (t *Topology) Clients() []Client {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Client, 0, len(t.clients))
	for _, c := range t.clients {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// StationForCell resolves a cell's serving station.
func (t *Topology) StationForCell(id CellID) (Station, error) {
	t.mu.RLock()
	c, ok := t.cells[id]
	if !ok {
		t.mu.RUnlock()
		return Station{}, fmt.Errorf("%w: %s", ErrUnknownCell, id)
	}
	s, ok := t.stations[c.Station]
	t.mu.RUnlock()
	if !ok {
		return Station{}, fmt.Errorf("%w: %s", ErrUnknownStation, c.Station)
	}
	return *s, nil
}

// Attach associates a client with a cell, firing listeners on change.
func (t *Topology) Attach(client ClientID, cell CellID) error {
	t.mu.Lock()
	c, ok := t.clients[client]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	if _, ok := t.cells[cell]; !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownCell, cell)
	}
	from := c.Attached
	if from == cell {
		t.mu.Unlock()
		return nil
	}
	c.Attached = cell
	listeners := append([]func(AssociationEvent){}, t.listeners...)
	t.mu.Unlock()
	ev := AssociationEvent{Client: client, From: from, To: cell}
	for _, fn := range listeners {
		fn(ev)
	}
	return nil
}

// Detach disassociates a client, firing listeners if it was attached.
func (t *Topology) Detach(client ClientID) error {
	t.mu.Lock()
	c, ok := t.clients[client]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	from := c.Attached
	if from == "" {
		t.mu.Unlock()
		return nil
	}
	c.Attached = ""
	listeners := append([]func(AssociationEvent){}, t.listeners...)
	t.mu.Unlock()
	ev := AssociationEvent{Client: client, From: from}
	for _, fn := range listeners {
		fn(ev)
	}
	return nil
}

// MoveClient updates a client's position and re-associates it with the
// nearest in-range cell (sticky: it keeps its current cell while still in
// range, the usual 802.11 behaviour, unless a closer cell is at least
// hysteresis metres closer).
func (t *Topology) MoveClient(client ClientID, to Point, hysteresis float64) error {
	t.mu.Lock()
	c, ok := t.clients[client]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownClient, client)
	}
	c.Position = to
	current := c.Attached
	best, bestDist := t.nearestCellLocked(to)
	target := current
	switch {
	case best == "":
		target = "" // nowhere in range
	case current == "":
		target = best
	default:
		cur := t.cells[current]
		curDist := cur.Center.Distance(to)
		if curDist > cur.Radius {
			target = best // lost the current cell
		} else if bestDist+hysteresis < curDist {
			target = best // decisively closer cell
		}
	}
	t.mu.Unlock()
	if target == current {
		return nil
	}
	if target == "" {
		return t.Detach(client)
	}
	return t.Attach(client, target)
}

// NearestCell returns the closest in-range cell to p, or "" when no cell
// covers p.
func (t *Topology) NearestCell(p Point) CellID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, _ := t.nearestCellLocked(p)
	return id
}

func (t *Topology) nearestCellLocked(p Point) (CellID, float64) {
	var best CellID
	bestDist := math.Inf(1)
	// Iterate in sorted order for deterministic tie-breaks.
	ids := make([]string, 0, len(t.cells))
	for id := range t.cells {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		c := t.cells[CellID(id)]
		d := c.Center.Distance(p)
		if d <= c.Radius && d < bestDist {
			best, bestDist = c.ID, d
		}
	}
	return best, bestDist
}

// ClientsInCell lists clients attached to the cell.
func (t *Topology) ClientsInCell(id CellID) []Client {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []Client
	for _, c := range t.clients {
		if c.Attached == id {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
