package topology

import (
	"errors"
	"testing"

	"gnf/internal/packet"
)

// edge builds the Fig. 1-style test topology: two stations, two cells
// 100m apart with 60m radius, one client.
func edge(t *testing.T) *Topology {
	t.Helper()
	topo := New()
	if err := topo.AddStation(Station{ID: "st-a", ControlAddr: "127.0.0.1:0", Position: Point{0, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddStation(Station{ID: "st-b", Position: Point{100, 0}}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddCell(Cell{ID: "cell-a", Station: "st-a", Center: Point{0, 0}, Radius: 60}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddCell(Cell{ID: "cell-b", Station: "st-b", Center: Point{100, 0}, Radius: 60}); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddClient(Client{ID: "phone", MAC: packet.MAC{2, 0, 0, 0, 0, 9}, IP: packet.IP{10, 0, 0, 9}}); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestDuplicateAndUnknownIDs(t *testing.T) {
	topo := edge(t)
	if err := topo.AddStation(Station{ID: "st-a"}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup station: %v", err)
	}
	if err := topo.AddCell(Cell{ID: "cell-a", Station: "st-a"}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup cell: %v", err)
	}
	if err := topo.AddCell(Cell{ID: "cell-x", Station: "ghost"}); !errors.Is(err, ErrUnknownStation) {
		t.Fatalf("cell w/o station: %v", err)
	}
	if err := topo.AddClient(Client{ID: "phone"}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup client: %v", err)
	}
	if _, err := topo.Cell("nope"); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("unknown cell: %v", err)
	}
	if _, err := topo.Station("nope"); !errors.Is(err, ErrUnknownStation) {
		t.Fatalf("unknown station: %v", err)
	}
	if _, err := topo.Client("nope"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("unknown client: %v", err)
	}
	if err := topo.Attach("ghost", "cell-a"); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("attach unknown client: %v", err)
	}
	if err := topo.Attach("phone", "ghost"); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("attach unknown cell: %v", err)
	}
}

func TestAttachDetachEvents(t *testing.T) {
	topo := edge(t)
	var events []AssociationEvent
	topo.OnAssociation(func(ev AssociationEvent) { events = append(events, ev) })

	if err := topo.Attach("phone", "cell-a"); err != nil {
		t.Fatal(err)
	}
	if err := topo.Attach("phone", "cell-a"); err != nil { // no-op
		t.Fatal(err)
	}
	if err := topo.Attach("phone", "cell-b"); err != nil {
		t.Fatal(err)
	}
	if err := topo.Detach("phone"); err != nil {
		t.Fatal(err)
	}
	if err := topo.Detach("phone"); err != nil { // no-op
		t.Fatal(err)
	}
	want := []AssociationEvent{
		{Client: "phone", From: "", To: "cell-a"},
		{Client: "phone", From: "cell-a", To: "cell-b"},
		{Client: "phone", From: "cell-b", To: ""},
	}
	if len(events) != len(want) {
		t.Fatalf("events = %+v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event[%d] = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestNearestCell(t *testing.T) {
	topo := edge(t)
	if got := topo.NearestCell(Point{10, 0}); got != "cell-a" {
		t.Fatalf("nearest(10,0) = %q", got)
	}
	if got := topo.NearestCell(Point{90, 0}); got != "cell-b" {
		t.Fatalf("nearest(90,0) = %q", got)
	}
	if got := topo.NearestCell(Point{500, 500}); got != "" {
		t.Fatalf("nearest(out of range) = %q", got)
	}
	// Overlap midpoint: both in range, equidistant — deterministic pick.
	if got := topo.NearestCell(Point{50, 0}); got != "cell-a" {
		t.Fatalf("tie-break = %q", got)
	}
}

func TestMoveClientRoaming(t *testing.T) {
	topo := edge(t)
	var events []AssociationEvent
	topo.OnAssociation(func(ev AssociationEvent) { events = append(events, ev) })

	// Walk from cell A's center into cell B.
	if err := topo.MoveClient("phone", Point{0, 0}, 5); err != nil {
		t.Fatal(err)
	}
	if err := topo.MoveClient("phone", Point{40, 0}, 5); err != nil {
		t.Fatal(err) // still in A (sticky)
	}
	c, _ := topo.Client("phone")
	if c.Attached != "cell-a" {
		t.Fatalf("attached = %q, want cell-a (sticky)", c.Attached)
	}
	if err := topo.MoveClient("phone", Point{80, 0}, 5); err != nil {
		t.Fatal(err) // out of A's 60m radius -> handoff to B
	}
	c, _ = topo.Client("phone")
	if c.Attached != "cell-b" {
		t.Fatalf("attached = %q, want cell-b", c.Attached)
	}
	if err := topo.MoveClient("phone", Point{400, 400}, 5); err != nil {
		t.Fatal(err) // nowhere in range -> detach
	}
	c, _ = topo.Client("phone")
	if c.Attached != "" {
		t.Fatalf("attached = %q, want detached", c.Attached)
	}
	if len(events) != 3 {
		t.Fatalf("events = %+v", events)
	}
	if c.Position != (Point{400, 400}) {
		t.Fatal("position not updated")
	}
}

func TestMoveClientHysteresis(t *testing.T) {
	topo := edge(t)
	topo.Attach("phone", "cell-a")
	// At x=52 both cells cover; B is 4m closer but hysteresis is 10.
	if err := topo.MoveClient("phone", Point{52, 0}, 10); err != nil {
		t.Fatal(err)
	}
	c, _ := topo.Client("phone")
	if c.Attached != "cell-a" {
		t.Fatal("hysteresis ignored")
	}
	// With zero hysteresis the closer cell wins.
	if err := topo.MoveClient("phone", Point{52, 0}, 0); err != nil {
		t.Fatal(err)
	}
	c, _ = topo.Client("phone")
	if c.Attached != "cell-b" {
		t.Fatal("closer cell not chosen at zero hysteresis")
	}
}

func TestListingsAndLookups(t *testing.T) {
	topo := edge(t)
	if cells := topo.Cells(); len(cells) != 2 || cells[0].ID != "cell-a" {
		t.Fatalf("cells = %+v", cells)
	}
	if sts := topo.Stations(); len(sts) != 2 || sts[1].ID != "st-b" {
		t.Fatalf("stations = %+v", sts)
	}
	if cls := topo.Clients(); len(cls) != 1 || cls[0].ID != "phone" {
		t.Fatalf("clients = %+v", cls)
	}
	st, err := topo.StationForCell("cell-b")
	if err != nil || st.ID != "st-b" {
		t.Fatalf("StationForCell = %+v, %v", st, err)
	}
	if _, err := topo.StationForCell("ghost"); err == nil {
		t.Fatal("unknown cell resolved")
	}
	topo.Attach("phone", "cell-a")
	if in := topo.ClientsInCell("cell-a"); len(in) != 1 || in[0].ID != "phone" {
		t.Fatalf("ClientsInCell = %+v", in)
	}
	if in := topo.ClientsInCell("cell-b"); len(in) != 0 {
		t.Fatalf("cell-b clients = %+v", in)
	}
}
