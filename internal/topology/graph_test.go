package topology_test

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"gnf/internal/topology"
)

const hop = 5 * time.Millisecond

func ringIDs(n int) []topology.StationID {
	ids := make([]topology.StationID, n)
	for i := range ids {
		ids[i] = topology.StationID(string(rune('a' + i)))
	}
	return ids
}

func TestRingLatencyAndPath(t *testing.T) {
	ids := ringIDs(6) // a-b-c-d-e-f-a
	g := topology.Ring(ids, hop, 1_000_000_000)

	if d, ok := g.Latency("a", "d"); !ok || d != 3*hop {
		t.Fatalf("a->d latency = %v, %v (want 3 hops)", d, ok)
	}
	if d, ok := g.Latency("a", "f"); !ok || d != hop {
		t.Fatalf("a->f latency = %v, %v (want 1 hop around the back)", d, ok)
	}
	if rtt, ok := g.RTT("a", "c"); !ok || rtt != 4*hop {
		t.Fatalf("a<->c rtt = %v, %v", rtt, ok)
	}
	if d, ok := g.Latency("c", "c"); !ok || d != 0 {
		t.Fatalf("self latency = %v, %v", d, ok)
	}
	path, ok := g.Path("a", "c")
	if !ok || !reflect.DeepEqual(path, []topology.StationID{"a", "b", "c"}) {
		t.Fatalf("path a->c = %v, %v", path, ok)
	}
	if len(g.Links()) != 6 {
		t.Fatalf("ring of 6 has %d links, want 6", len(g.Links()))
	}
}

func TestIncrementalRelaxOnNewLink(t *testing.T) {
	g := topology.Ring(ringIDs(6), hop, 0)
	// A 2ms shortcut a-d must improve every pair routing through it.
	g.SetLink(topology.Link{A: "a", B: "d", Delay: 2 * time.Millisecond})
	if d, _ := g.Latency("a", "d"); d != 2*time.Millisecond {
		t.Fatalf("a->d = %v after shortcut", d)
	}
	// b->d: direct ring 2 hops (10ms) vs b-a (5) + shortcut (2) = 7ms.
	if d, _ := g.Latency("b", "d"); d != 7*time.Millisecond {
		t.Fatalf("b->d = %v, want 7ms via shortcut", d)
	}
	// Speeding the shortcut up relaxes further.
	g.SetLink(topology.Link{A: "a", B: "d", Delay: time.Millisecond})
	if d, _ := g.Latency("b", "d"); d != 6*time.Millisecond {
		t.Fatalf("b->d = %v after faster shortcut", d)
	}
}

func TestRebuildOnSlowdownAndRemoval(t *testing.T) {
	g := topology.Ring(ringIDs(6), hop, 0)
	g.SetLink(topology.Link{A: "a", B: "d", Delay: 2 * time.Millisecond})
	// Slowing the shortcut past the ring path must restore ring routing.
	g.SetLink(topology.Link{A: "a", B: "d", Delay: 50 * time.Millisecond})
	if d, _ := g.Latency("a", "d"); d != 3*hop {
		t.Fatalf("a->d = %v after slowdown, want ring path", d)
	}
	g.RemoveLink("a", "d")
	if d, _ := g.Latency("a", "d"); d != 3*hop {
		t.Fatalf("a->d = %v after removal", d)
	}
	// Cutting the ring turns it into a line: a->f now goes the long way.
	g.RemoveLink("a", "f")
	if d, _ := g.Latency("a", "f"); d != 5*hop {
		t.Fatalf("a->f = %v after ring cut, want 5 hops", d)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g := topology.NewGraph()
	g.SetLink(topology.Link{A: "a", B: "b", Delay: hop})
	g.AddNode("island")
	if _, ok := g.Latency("a", "island"); ok {
		t.Fatal("latency to a disconnected node must not resolve")
	}
	if _, ok := g.Path("a", "island"); ok {
		t.Fatal("path to a disconnected node must not resolve")
	}
	if _, ok := g.Latency("a", "ghost"); ok {
		t.Fatal("latency to an unknown node must not resolve")
	}
}

func TestTreeAndFatEdgePresets(t *testing.T) {
	ids := ringIDs(7) // binary tree: a(b(d,e), c(f,g))
	tr := topology.Tree(ids, hop, 0)
	if d, _ := tr.Latency("a", "g"); d != 2*hop {
		t.Fatalf("tree root->leaf = %v", d)
	}
	if d, _ := tr.Latency("d", "g"); d != 4*hop {
		t.Fatalf("tree leaf->leaf across root = %v", d)
	}
	fe := topology.FatEdge(ids, hop, 0)
	for _, b := range ids[1:] {
		if d, _ := fe.Latency(ids[0], b); d != hop {
			t.Fatalf("fat-edge %s->%s = %v, want one hop", ids[0], b, d)
		}
	}
	if got := len(fe.Links()); got != 21 {
		t.Fatalf("fat-edge of 7 has %d links, want 21", got)
	}
}

// TestConcurrentSlowdownRemovalRebuilds races Latency/Path/RTT readers
// against the *rebuild* path: every slowdown and removal forces a full
// Floyd-Warshall recompute, the only mutation that can make previously
// optimal entries worse. The ring keeps the graph connected throughout,
// so every consistent snapshot satisfies tight latency bounds — readers
// assert them on every query, and the test pins final convergence once
// the churn stops. Run under -race.
func TestConcurrentSlowdownRemovalRebuilds(t *testing.T) {
	// Ring of 8 (a..h, 5ms hops) plus a flapping a-e shortcut. b->f is 4
	// ring hops (20ms) either way, or 11ms via a fast shortcut
	// (b-a 5ms + a-e 1ms + e-f 5ms). Whatever snapshot a reader catches —
	// shortcut fast, slow (50ms, worse than the ring), or absent — the
	// best b->f path stays within [11ms, 20ms] and must always resolve.
	g := topology.Ring(ringIDs(8), hop, 0)
	g.SetLink(topology.Link{A: "a", B: "e", Delay: time.Millisecond})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d, ok := g.Latency("b", "f")
				if !ok {
					t.Error("b->f unreachable while the ring is intact")
					return
				}
				if d < 11*time.Millisecond || d > 20*time.Millisecond {
					t.Errorf("b->f = %v, outside [11ms, 20ms]", d)
					return
				}
				if path, ok := g.Path("b", "f"); !ok || path[0] != "b" || path[len(path)-1] != "f" {
					t.Errorf("path b->f = %v, %v", path, ok)
					return
				}
				if rtt, ok := g.RTT("c", "g"); !ok || rtt <= 0 {
					t.Errorf("rtt c<->g = %v, %v", rtt, ok)
					return
				}
			}
		}()
	}
	for i := 0; i < 60 && !t.Failed(); i++ {
		// Slow the shortcut past the ring (rebuild), drop it (rebuild),
		// then restore it fast (incremental relax).
		g.SetLink(topology.Link{A: "a", B: "e", Delay: 50 * time.Millisecond})
		g.RemoveLink("a", "e")
		g.SetLink(topology.Link{A: "a", B: "e", Delay: time.Millisecond})
	}
	close(stop)
	wg.Wait()

	// Churn over: the fast shortcut is live, routing must have converged.
	if d, _ := g.Latency("a", "e"); d != time.Millisecond {
		t.Fatalf("a->e = %v after churn, want 1ms shortcut", d)
	}
	if d, _ := g.Latency("b", "f"); d != 11*time.Millisecond {
		t.Fatalf("b->f = %v after churn, want 11ms via shortcut", d)
	}
}

// TestConcurrentBridgeFlap removes and restores a bridge link while
// readers query across it: unlike the ring test there is no redundant
// path, so a reader may legitimately catch a partitioned snapshot. What
// it must never see is an inconsistent one — a resolved latency other
// than the exact bridge cost, or a resolved path that doesn't walk
// a-b-c. Run under -race.
func TestConcurrentBridgeFlap(t *testing.T) {
	g := topology.NewGraph()
	g.SetLink(topology.Link{A: "a", B: "b", Delay: hop})
	g.SetLink(topology.Link{A: "b", B: "c", Delay: hop})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if d, ok := g.Latency("a", "c"); ok && d != 2*hop {
					t.Errorf("a->c resolved to %v, want exactly 2 hops or unreachable", d)
					return
				}
				if path, ok := g.Path("a", "c"); ok && !reflect.DeepEqual(path, []topology.StationID{"a", "b", "c"}) {
					t.Errorf("a->c path = %v, want [a b c] or unreachable", path)
					return
				}
			}
		}()
	}
	for i := 0; i < 60 && !t.Failed(); i++ {
		g.RemoveLink("b", "c")
		g.SetLink(topology.Link{A: "b", B: "c", Delay: hop})
	}
	close(stop)
	wg.Wait()

	if d, ok := g.Latency("a", "c"); !ok || d != 2*hop {
		t.Fatalf("a->c = %v, %v after flap, want 2 hops", d, ok)
	}
}

// TestConcurrentAccess interleaves mutation and queries; run under -race.
func TestConcurrentAccess(t *testing.T) {
	g := topology.Ring(ringIDs(8), hop, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g.SetLink(topology.Link{A: "a", B: "e", Delay: time.Duration(1+(i+w)%7) * time.Millisecond})
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Latency("b", "f")
				g.Path("c", "g")
			}
		}()
	}
	wg.Wait()
	if _, ok := g.Latency("a", "e"); !ok {
		t.Fatal("graph lost connectivity under concurrent churn")
	}
}
