package topology_test

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"gnf/internal/topology"
)

const hop = 5 * time.Millisecond

func ringIDs(n int) []topology.StationID {
	ids := make([]topology.StationID, n)
	for i := range ids {
		ids[i] = topology.StationID(string(rune('a' + i)))
	}
	return ids
}

func TestRingLatencyAndPath(t *testing.T) {
	ids := ringIDs(6) // a-b-c-d-e-f-a
	g := topology.Ring(ids, hop, 1_000_000_000)

	if d, ok := g.Latency("a", "d"); !ok || d != 3*hop {
		t.Fatalf("a->d latency = %v, %v (want 3 hops)", d, ok)
	}
	if d, ok := g.Latency("a", "f"); !ok || d != hop {
		t.Fatalf("a->f latency = %v, %v (want 1 hop around the back)", d, ok)
	}
	if rtt, ok := g.RTT("a", "c"); !ok || rtt != 4*hop {
		t.Fatalf("a<->c rtt = %v, %v", rtt, ok)
	}
	if d, ok := g.Latency("c", "c"); !ok || d != 0 {
		t.Fatalf("self latency = %v, %v", d, ok)
	}
	path, ok := g.Path("a", "c")
	if !ok || !reflect.DeepEqual(path, []topology.StationID{"a", "b", "c"}) {
		t.Fatalf("path a->c = %v, %v", path, ok)
	}
	if len(g.Links()) != 6 {
		t.Fatalf("ring of 6 has %d links, want 6", len(g.Links()))
	}
}

func TestIncrementalRelaxOnNewLink(t *testing.T) {
	g := topology.Ring(ringIDs(6), hop, 0)
	// A 2ms shortcut a-d must improve every pair routing through it.
	g.SetLink(topology.Link{A: "a", B: "d", Delay: 2 * time.Millisecond})
	if d, _ := g.Latency("a", "d"); d != 2*time.Millisecond {
		t.Fatalf("a->d = %v after shortcut", d)
	}
	// b->d: direct ring 2 hops (10ms) vs b-a (5) + shortcut (2) = 7ms.
	if d, _ := g.Latency("b", "d"); d != 7*time.Millisecond {
		t.Fatalf("b->d = %v, want 7ms via shortcut", d)
	}
	// Speeding the shortcut up relaxes further.
	g.SetLink(topology.Link{A: "a", B: "d", Delay: time.Millisecond})
	if d, _ := g.Latency("b", "d"); d != 6*time.Millisecond {
		t.Fatalf("b->d = %v after faster shortcut", d)
	}
}

func TestRebuildOnSlowdownAndRemoval(t *testing.T) {
	g := topology.Ring(ringIDs(6), hop, 0)
	g.SetLink(topology.Link{A: "a", B: "d", Delay: 2 * time.Millisecond})
	// Slowing the shortcut past the ring path must restore ring routing.
	g.SetLink(topology.Link{A: "a", B: "d", Delay: 50 * time.Millisecond})
	if d, _ := g.Latency("a", "d"); d != 3*hop {
		t.Fatalf("a->d = %v after slowdown, want ring path", d)
	}
	g.RemoveLink("a", "d")
	if d, _ := g.Latency("a", "d"); d != 3*hop {
		t.Fatalf("a->d = %v after removal", d)
	}
	// Cutting the ring turns it into a line: a->f now goes the long way.
	g.RemoveLink("a", "f")
	if d, _ := g.Latency("a", "f"); d != 5*hop {
		t.Fatalf("a->f = %v after ring cut, want 5 hops", d)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	g := topology.NewGraph()
	g.SetLink(topology.Link{A: "a", B: "b", Delay: hop})
	g.AddNode("island")
	if _, ok := g.Latency("a", "island"); ok {
		t.Fatal("latency to a disconnected node must not resolve")
	}
	if _, ok := g.Path("a", "island"); ok {
		t.Fatal("path to a disconnected node must not resolve")
	}
	if _, ok := g.Latency("a", "ghost"); ok {
		t.Fatal("latency to an unknown node must not resolve")
	}
}

func TestTreeAndFatEdgePresets(t *testing.T) {
	ids := ringIDs(7) // binary tree: a(b(d,e), c(f,g))
	tr := topology.Tree(ids, hop, 0)
	if d, _ := tr.Latency("a", "g"); d != 2*hop {
		t.Fatalf("tree root->leaf = %v", d)
	}
	if d, _ := tr.Latency("d", "g"); d != 4*hop {
		t.Fatalf("tree leaf->leaf across root = %v", d)
	}
	fe := topology.FatEdge(ids, hop, 0)
	for _, b := range ids[1:] {
		if d, _ := fe.Latency(ids[0], b); d != hop {
			t.Fatalf("fat-edge %s->%s = %v, want one hop", ids[0], b, d)
		}
	}
	if got := len(fe.Links()); got != 21 {
		t.Fatalf("fat-edge of 7 has %d links, want 21", got)
	}
}

// TestConcurrentAccess interleaves mutation and queries; run under -race.
func TestConcurrentAccess(t *testing.T) {
	g := topology.Ring(ringIDs(8), hop, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g.SetLink(topology.Link{A: "a", B: "e", Delay: time.Duration(1+(i+w)%7) * time.Millisecond})
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Latency("b", "f")
				g.Path("c", "g")
			}
		}()
	}
	wg.Wait()
	if _, ok := g.Latency("a", "e"); !ok {
		t.Fatal("graph lost connectivity under concurrent churn")
	}
}
