package wire_test

import (
	"encoding/binary"
	"encoding/json"
	"net"
	"testing"
	"time"

	"gnf/internal/wire"
)

// faultServer starts a server that echoes on "echo" and reports accepted
// peers.
func faultServer(t *testing.T) (*wire.Server, chan *wire.Peer) {
	t.Helper()
	accepted := make(chan *wire.Peer, 8)
	srv, err := wire.NewServer("127.0.0.1:0", func(p *wire.Peer) {
		p.Handle("echo", func(body json.RawMessage) (any, error) {
			return json.RawMessage(body), nil
		})
		accepted <- p
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, accepted
}

// TestGarbageBytesDoNotKillServer writes raw garbage at a server: the
// poisoned connection dies, but the listener and other peers keep
// working.
func TestGarbageBytesDoNotKillServer(t *testing.T) {
	srv, _ := faultServer(t)

	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// A length prefix promising 100 bytes of "JSON", then junk.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	raw.Write(hdr[:])
	junk := make([]byte, 100)
	for i := range junk {
		junk[i] = 0xA5
	}
	raw.Write(junk)
	raw.Close()

	// A well-behaved peer still gets service.
	peer, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	go peer.Run()
	var out map[string]string
	if err := peer.Call("echo", map[string]string{"k": "v"}, &out); err != nil {
		t.Fatalf("healthy peer broken by garbage neighbour: %v", err)
	}
	if out["k"] != "v" {
		t.Fatalf("echo = %v", out)
	}
}

// TestTornFrameDisconnect half-writes a frame and disconnects; the server
// must shrug it off.
func TestTornFrameDisconnect(t *testing.T) {
	srv, _ := faultServer(t)
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 64) // promise 64 bytes...
	raw.Write(hdr[:])
	raw.Write([]byte(`{"kind":"req","me`)) // ...deliver 17, then vanish
	raw.Close()

	peer, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	go peer.Run()
	if err := peer.Call("echo", map[string]int{"n": 1}, nil); err != nil {
		t.Fatalf("server did not survive torn frame: %v", err)
	}
}

// TestOversizePrefixRejectedImmediately claims a frame beyond
// MaxFrameBytes: the connection must be cut without allocating the
// claimed buffer.
func TestOversizePrefixRejectedImmediately(t *testing.T) {
	srv, accepted := faultServer(t)
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var p *wire.Peer
	select {
	case p = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("no accept")
	}
	closed := make(chan struct{})
	p.OnClose(func(error) { close(closed) })
	go p.Run()

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(wire.MaxFrameBytes+1))
	raw.Write(hdr[:])
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("oversize prefix not rejected")
	}
}

// TestUnknownKindPoisonsConnection sends a well-formed JSON frame whose
// kind is gibberish. The protocol is intentionally strict — an unknown
// kind means the two ends have desynchronised, so the peer must cut the
// connection rather than guess — while the listener keeps serving others.
func TestUnknownKindPoisonsConnection(t *testing.T) {
	srv, accepted := faultServer(t)
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var p *wire.Peer
	select {
	case p = <-accepted:
	case <-time.After(2 * time.Second):
		t.Fatal("no accept")
	}
	closed := make(chan struct{})
	p.OnClose(func(error) { close(closed) })
	go p.Run()

	body, _ := json.Marshal(map[string]any{"kind": "??", "id": 1})
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	raw.Write(hdr[:])
	raw.Write(body)

	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("unknown kind tolerated — protocol must fail fast")
	}

	// Fresh peers are unaffected.
	peer, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	go peer.Run()
	if err := peer.Call("echo", map[string]int{"n": 1}, nil); err != nil {
		t.Fatalf("listener poisoned: %v", err)
	}
}
