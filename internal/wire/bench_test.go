package wire

import (
	"encoding/json"
	"sync"
	"testing"
)

func BenchmarkCallRoundTrip(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		p.Handle("echo", func(body json.RawMessage) (any, error) {
			return json.RawMessage(body), nil
		})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	go p.Run()
	defer p.Close()

	in := map[string]string{"key": "value", "station": "st-a"}
	var out map[string]string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Call("echo", in, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallContention measures the write-mutex cost of fanning many
// concurrent calls over one peer: "calls" issues n independent Calls (each
// fighting for wmu and flushing its own frame), "batch" sends the same n
// requests as one CallBatch (one wmu acquisition, one flush). The gap is
// what steer coalescing buys during a handoff storm.
func BenchmarkCallContention(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		p.Handle("echo", func(body json.RawMessage) (any, error) {
			return json.RawMessage(body), nil
		})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	go p.Run()
	defer p.Close()

	const fan = 16
	in := map[string]string{"client": "c01", "via": "st-a"}

	b.Run("calls", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			errs := make([]error, fan)
			for j := 0; j < fan; j++ {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					var out map[string]string
					errs[j] = p.Call("echo", in, &out)
				}(j)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			calls := make([]BatchCall, fan)
			outs := make([]map[string]string, fan)
			for j := range calls {
				calls[j] = BatchCall{Method: "echo", In: in, Out: &outs[j]}
			}
			for _, err := range p.CallBatch(calls) {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func BenchmarkNotifyThroughput(b *testing.B) {
	done := make(chan struct{}, 1)
	count := 0
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		p.HandleNotify("tick", func(json.RawMessage) {
			count++
			if count == b.N {
				done <- struct{}{}
			}
		})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	go p.Run()
	defer p.Close()

	payload := map[string]int{"seq": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Notify("tick", payload); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}
