package wire

import (
	"encoding/json"
	"testing"
)

func BenchmarkCallRoundTrip(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		p.Handle("echo", func(body json.RawMessage) (any, error) {
			return json.RawMessage(body), nil
		})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	go p.Run()
	defer p.Close()

	in := map[string]string{"key": "value", "station": "st-a"}
	var out map[string]string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Call("echo", in, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNotifyThroughput(b *testing.B) {
	done := make(chan struct{}, 1)
	count := 0
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		p.HandleNotify("tick", func(json.RawMessage) {
			count++
			if count == b.N {
				done <- struct{}{}
			}
		})
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	p, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	go p.Run()
	defer p.Close()

	payload := map[string]int{"seq": 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Notify("tick", payload); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}
