package wire

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// notifyingServer starts a server that answers "echo" and pushes one
// `method` notification at every peer right after accept — the
// manager-pushes-to-agent direction that exposed the read-loop bugs.
func notifyingServer(t *testing.T, method string) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", func(sp *Peer) {
		sp.Handle("echo", func(body json.RawMessage) (any, error) {
			var req echoReq
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, err
			}
			return echoRes{Text: req.Text}, nil
		})
		go sp.Notify(method, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// dialHandling dials addr and registers handlers via setup before the
// read loop starts — the server pushes its notify immediately on accept,
// so registering after Run would race the dispatch.
func dialHandling(t *testing.T, addr string, setup func(*Peer)) *Peer {
	t.Helper()
	p, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	setup(p)
	go p.Run()
	t.Cleanup(func() { p.Close() })
	return p
}

// TestNotifyHandlerCanCallBack is the regression test for the read-loop
// deadlock: a notify handler that issues a Call over the same peer used
// to block the read loop, so the response could never be dispatched and
// the handler stalled until the call timeout.
func TestNotifyHandlerCanCallBack(t *testing.T) {
	srv := notifyingServer(t, "kick")
	got := make(chan string, 1)
	dialHandling(t, srv.Addr(), func(p *Peer) {
		p.SetCallTimeout(10 * time.Second)
		p.HandleNotify("kick", func(json.RawMessage) {
			var res echoRes
			if err := p.Call("echo", echoReq{Text: "from-notify"}, &res); err != nil {
				got <- "error: " + err.Error()
				return
			}
			got <- res.Text
		})
	})

	select {
	case v := <-got:
		if v != "from-notify" {
			t.Fatalf("notify->call returned %q", v)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("notify handler's Call never completed (read-loop deadlock)")
	}
}

// TestSlowNotifyDoesNotStallResponses pins the second half of the bug: a
// slow notify handler (e.g. the manager's MethodReport) must not delay
// dispatch of responses to in-flight calls.
func TestSlowNotifyDoesNotStallResponses(t *testing.T) {
	srv := notifyingServer(t, "slow")
	release := make(chan struct{})
	entered := make(chan struct{})
	p := dialHandling(t, srv.Addr(), func(p *Peer) {
		p.HandleNotify("slow", func(json.RawMessage) {
			close(entered)
			<-release
		})
	})
	defer close(release)

	select {
	case <-entered:
	case <-time.After(3 * time.Second):
		t.Fatal("notify never delivered")
	}
	// With the handler still blocked, a Call must round-trip promptly.
	done := make(chan error, 1)
	go func() {
		var res echoRes
		done <- p.Call("echo", echoReq{Text: "x"}, &res)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("call during blocked notify: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("response dispatch stalled behind a slow notify handler")
	}
}

// TestNotifyOrderPreserved checks the per-peer FIFO guarantee survives the
// move off the read loop.
func TestNotifyOrderPreserved(t *testing.T) {
	const n = 200
	got := make(chan int, n)
	srv, err := NewServer("127.0.0.1:0", func(sp *Peer) {
		sp.HandleNotify("seq", func(body json.RawMessage) {
			var v int
			json.Unmarshal(body, &v)
			got <- v
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dial(t, srv.Addr())
	for i := 0; i < n; i++ {
		if err := p.Notify("seq", i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case v := <-got:
			if v != i {
				t.Fatalf("notify %d arrived out of order (got %d)", i, v)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("notify %d never arrived", i)
		}
	}
}

// TestNotifyQueueBounded: a handler that never drains must not let the
// pending queue (and the process heap) grow without bound — overflow
// drops the oldest notification and counts it.
func TestNotifyQueueBounded(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	var sp *Peer
	accepted := make(chan struct{})
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		sp = p
		p.HandleNotify("flood", func(json.RawMessage) {
			once.Do(func() { close(entered) })
			<-block
		})
		close(accepted)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block)

	p := dial(t, srv.Addr())
	<-accepted
	const extra = 512
	for i := 0; i < maxNotifyQueue+extra+2; i++ {
		if err := p.Notify("flood", i); err != nil {
			t.Fatal(err)
		}
	}
	<-entered // dispatcher is wedged on the first notification
	deadline := time.After(5 * time.Second)
	for sp.DroppedNotifies() == 0 {
		select {
		case <-deadline:
			t.Fatalf("no notifications dropped; queue unbounded? dropped=%d", sp.DroppedNotifies())
		case <-time.After(2 * time.Millisecond):
		}
	}
	sp.nmu.Lock()
	qlen := len(sp.nqueue)
	sp.nmu.Unlock()
	if qlen > maxNotifyQueue {
		t.Fatalf("queue length %d exceeds bound %d", qlen, maxNotifyQueue)
	}
}

// TestSetCallTimeoutConcurrent exercises the SetCallTimeout/Call data race
// (run with -race): adjusting the timeout while calls are in flight used
// to be an unsynchronized read/write pair.
func TestSetCallTimeoutConcurrent(t *testing.T) {
	srv, _ := startEcho(t)
	p := dial(t, srv.Addr())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.SetCallTimeout(time.Duration(i%5+1) * time.Second)
		}
	}()
	for i := 0; i < 50; i++ {
		var res echoRes
		if err := p.Call("echo", echoReq{Text: fmt.Sprint(i)}, &res); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
