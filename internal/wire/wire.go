// Package wire implements GNF's control-plane protocol: length-prefixed
// JSON frames over TCP carrying bidirectional request/response RPC plus
// one-way notifications. The Manager keeps one Peer per Agent connection
// (§3: "keeping a connection with all the Agents in the network"); both
// ends can initiate calls over the same connection — the Manager pushes NF
// deployments down, Agents push health reports and NF notifications up.
//
// Framing: 4-byte big-endian length, then a JSON body:
//
//	{"kind":"req","id":7,"method":"agent.deploy","body":{...}}
//	{"kind":"res","id":7,"body":{...}}            // success
//	{"kind":"res","id":7,"error":"no such image"} // failure
//	{"kind":"ntf","method":"nf.alert","body":{...}}
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxFrameBytes bounds a single frame; larger frames poison the connection
// and are rejected.
const MaxFrameBytes = 16 << 20

// maxNotifyQueue and maxNotifyBytes bound the per-peer
// pending-notification FIFO, by entry count and by payload bytes (one
// maximum-size frame can carry 16 MiB, so an entry cap alone would not
// bound the heap); overflow drops the oldest entries (see Peer.nqueue).
const (
	maxNotifyQueue = 4096
	maxNotifyBytes = 16 << 20
)

// Frame kinds.
const (
	kindRequest  = "req"
	kindResponse = "res"
	kindNotify   = "ntf"
)

// Errors returned by Peer operations.
var (
	ErrClosed      = errors.New("wire: peer closed")
	ErrFrameTooBig = errors.New("wire: frame exceeds limit")
	ErrCallTimeout = errors.New("wire: call timed out")
	ErrNoHandler   = errors.New("wire: no handler for method")
	ErrBadFrame    = errors.New("wire: malformed frame")
)

// frame is the on-wire envelope. Trace carries opaque tracing metadata
// (an encoded trace context) alongside requests; it is absent from
// untraced traffic, so legacy peers interoperate unchanged.
type frame struct {
	Kind   string          `json:"kind"`
	ID     uint64          `json:"id,omitempty"`
	Method string          `json:"method,omitempty"`
	Trace  string          `json:"trace,omitempty"`
	Error  string          `json:"error,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// writeFrame marshals and writes one frame with its length prefix.
func writeFrame(w io.Writer, f *frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if len(body) > MaxFrameBytes {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, ErrFrameTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var f frame
	if err := json.Unmarshal(body, &f); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return &f, nil
}

// Handler serves one RPC method. The returned value is marshalled as the
// response body; a non-nil error produces an error response.
type Handler func(body json.RawMessage) (any, error)

// TracedHandler is a Handler that also receives the request's trace
// metadata ("" when the caller did not trace). Receivers must treat the
// string as opaque and advisory: a malformed value is never an error.
type TracedHandler func(traceMeta string, body json.RawMessage) (any, error)

// NotifyHandler consumes a one-way notification.
type NotifyHandler func(body json.RawMessage)

// Peer is one end of a control connection. Create with NewPeer, register
// handlers, then call Run (usually in a goroutine) to start dispatching.
type Peer struct {
	conn net.Conn
	bw   *bufio.Writer
	wmu  sync.Mutex // serialises frame writes

	mu       sync.Mutex
	handlers map[string]TracedHandler
	notify   map[string]NotifyHandler
	pending  map[uint64]chan *frame
	closed   bool
	closeErr error
	onClose  []func(error)

	// Notifications are dispatched off the read loop (a notify handler
	// may Call back over the same peer, and a slow handler must not
	// stall response dispatch) but in arrival order, on one goroutine
	// draining this FIFO. The queue is bounded: blocking the read loop
	// on a full queue would reintroduce the deadlock, so overflow drops
	// the oldest entry instead (notifications are fire-and-forget;
	// under sustained overload the freshest data wins).
	nmu      sync.Mutex
	ncond    *sync.Cond
	nqueue   []*frame
	nbytes   int // sum of queued body sizes
	nclosed  bool
	ndropped atomic.Uint64

	nextID      atomic.Uint64
	callTimeout atomic.Int64 // time.Duration; read by Call, set by SetCallTimeout
}

// NewPeer wraps an established connection. The peer does not read until
// Run is called.
func NewPeer(conn net.Conn) *Peer {
	p := &Peer{
		conn:     conn,
		bw:       bufio.NewWriter(conn),
		handlers: make(map[string]TracedHandler),
		notify:   make(map[string]NotifyHandler),
		pending:  make(map[uint64]chan *frame),
	}
	p.ncond = sync.NewCond(&p.nmu)
	p.callTimeout.Store(int64(10 * time.Second))
	return p
}

// SetCallTimeout adjusts the per-call deadline (default 10s). It is safe
// to call concurrently with in-flight Calls; calls already waiting keep
// the deadline they started with.
func (p *Peer) SetCallTimeout(d time.Duration) { p.callTimeout.Store(int64(d)) }

// Handle registers a request handler for method. Handlers run on their own
// goroutine, so they may issue Calls back over the same peer.
func (p *Peer) Handle(method string, h Handler) {
	p.HandleTraced(method, func(_ string, body json.RawMessage) (any, error) {
		return h(body)
	})
}

// HandleTraced registers a handler that also sees the request's trace
// metadata. Handlers run on their own goroutine, so they may issue Calls
// back over the same peer — which is exactly how traced agents flush
// finished spans to the manager before responding.
func (p *Peer) HandleTraced(method string, h TracedHandler) {
	p.mu.Lock()
	p.handlers[method] = h
	p.mu.Unlock()
}

// HandleNotify registers a notification consumer for method.
func (p *Peer) HandleNotify(method string, h NotifyHandler) {
	p.mu.Lock()
	p.notify[method] = h
	p.mu.Unlock()
}

// DroppedNotifies reports notifications discarded because the pending
// queue overflowed (a handler persistently slower than the sender).
func (p *Peer) DroppedNotifies() uint64 { return p.ndropped.Load() }

// OnClose registers a callback invoked once when the peer shuts down.
func (p *Peer) OnClose(fn func(error)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		go fn(p.closeErr)
		return
	}
	p.onClose = append(p.onClose, fn)
}

// RemoteAddr reports the peer's network address.
func (p *Peer) RemoteAddr() string { return p.conn.RemoteAddr().String() }

// Run reads frames until the connection fails or Close is called. It
// always returns a non-nil error (io.EOF on clean shutdown by the remote).
func (p *Peer) Run() error {
	go p.notifyLoop()
	r := bufio.NewReader(p.conn)
	for {
		f, err := readFrame(r)
		if err != nil {
			p.shutdown(err)
			return err
		}
		switch f.Kind {
		case kindRequest:
			go p.serve(f)
		case kindResponse:
			p.mu.Lock()
			ch, ok := p.pending[f.ID]
			delete(p.pending, f.ID)
			p.mu.Unlock()
			if ok {
				ch <- f
			}
		case kindNotify:
			p.nmu.Lock()
			if !p.nclosed {
				for len(p.nqueue) > 0 &&
					(len(p.nqueue) >= maxNotifyQueue || p.nbytes+len(f.Body) > maxNotifyBytes) {
					p.nbytes -= len(p.nqueue[0].Body)
					p.nqueue[0] = nil
					p.nqueue = p.nqueue[1:]
					p.ndropped.Add(1)
				}
				p.nqueue = append(p.nqueue, f)
				p.nbytes += len(f.Body)
				p.ncond.Signal()
			}
			p.nmu.Unlock()
		default:
			p.shutdown(ErrBadFrame)
			return ErrBadFrame
		}
	}
}

// notifyLoop drains queued notifications in arrival order. Running them
// off the read loop means a handler that Calls back over the same peer
// sees its response dispatched normally instead of deadlocking until the
// call timeout, and a slow handler cannot stall in-flight responses.
func (p *Peer) notifyLoop() {
	for {
		p.nmu.Lock()
		for len(p.nqueue) == 0 && !p.nclosed {
			p.ncond.Wait()
		}
		if len(p.nqueue) == 0 {
			p.nmu.Unlock()
			return
		}
		f := p.nqueue[0]
		p.nqueue[0] = nil
		p.nqueue = p.nqueue[1:]
		p.nbytes -= len(f.Body)
		p.nmu.Unlock()

		p.mu.Lock()
		h := p.notify[f.Method]
		p.mu.Unlock()
		if h != nil {
			h(f.Body)
		}
	}
}

// serve runs one request handler and writes the response.
func (p *Peer) serve(req *frame) {
	p.mu.Lock()
	h := p.handlers[req.Method]
	p.mu.Unlock()
	res := frame{Kind: kindResponse, ID: req.ID}
	if h == nil {
		res.Error = ErrNoHandler.Error() + ": " + req.Method
	} else {
		out, err := h(req.Trace, req.Body)
		if err != nil {
			res.Error = err.Error()
		} else if out != nil {
			body, err := json.Marshal(out)
			if err != nil {
				res.Error = "wire: marshal response: " + err.Error()
			} else {
				res.Body = body
			}
		}
	}
	p.send(&res)
}

// send writes one frame, serialised against concurrent writers.
func (p *Peer) send(f *frame) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if err := writeFrame(p.bw, f); err != nil {
		return err
	}
	return p.bw.Flush()
}

// Call sends a request and decodes the response body into out (which may
// be nil to discard). It fails after the call timeout.
func (p *Peer) Call(method string, in, out any) error {
	return p.CallTraced(method, "", in, out)
}

// CallTraced is Call with trace metadata riding the request envelope.
// An empty traceMeta is exactly Call — no tracing bytes on the wire.
func (p *Peer) CallTraced(method, traceMeta string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	id := p.nextID.Add(1)
	ch := make(chan *frame, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.pending[id] = ch
	p.mu.Unlock()

	req := frame{Kind: kindRequest, ID: id, Method: method, Trace: traceMeta, Body: body}
	if err := p.send(&req); err != nil {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		return err
	}
	var timeout <-chan time.Time
	if d := time.Duration(p.callTimeout.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case res := <-ch:
		if res == nil {
			return ErrClosed
		}
		if res.Error != "" {
			return errors.New(res.Error)
		}
		if out != nil && len(res.Body) > 0 {
			return json.Unmarshal(res.Body, out)
		}
		return nil
	case <-timeout:
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrCallTimeout, method)
	}
}

// BatchCall is one element of a CallBatch: a method, its request body and
// an optional response destination (nil discards the response).
type BatchCall struct {
	Method string
	In     any
	Out    any
}

// CallBatch sends every call as one write burst: the request frames go out
// back-to-back under a single writer-lock acquisition with one flush, then
// the responses are awaited together under one shared deadline. Compared
// with N sequential Calls this removes N-1 writer-lock handoffs, N-1
// flushes and N-1 serialised round-trip waits — the difference between a
// storm of control updates convoying on wmu and one coalesced install.
// The result is per-call (nil = success), in input order.
func (p *Peer) CallBatch(calls []BatchCall) []error {
	errs := make([]error, len(calls))
	if len(calls) == 0 {
		return errs
	}
	frames := make([]*frame, len(calls))
	chans := make([]chan *frame, len(calls))
	ids := make([]uint64, len(calls))
	for i, c := range calls {
		body, err := json.Marshal(c.In)
		if err != nil {
			errs[i] = err
			continue
		}
		ids[i] = p.nextID.Add(1)
		frames[i] = &frame{Kind: kindRequest, ID: ids[i], Method: c.Method, Body: body}
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		for i := range calls {
			if errs[i] == nil {
				errs[i] = ErrClosed
			}
		}
		return errs
	}
	for i := range calls {
		if frames[i] != nil {
			chans[i] = make(chan *frame, 1)
			p.pending[ids[i]] = chans[i]
		}
	}
	p.mu.Unlock()

	werr := func() error {
		p.wmu.Lock()
		defer p.wmu.Unlock()
		p.mu.Lock()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return ErrClosed
		}
		for _, f := range frames {
			if f == nil {
				continue
			}
			if err := writeFrame(p.bw, f); err != nil {
				return err
			}
		}
		return p.bw.Flush()
	}()
	if werr != nil {
		// The connection is poisoned mid-batch; fail every registered call.
		p.mu.Lock()
		for i := range calls {
			if chans[i] != nil {
				delete(p.pending, ids[i])
				if errs[i] == nil {
					errs[i] = werr
				}
			}
		}
		p.mu.Unlock()
		return errs
	}

	var timeout <-chan time.Time
	if d := time.Duration(p.callTimeout.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	for i := range calls {
		if chans[i] == nil {
			continue
		}
		select {
		case res := <-chans[i]:
			switch {
			case res == nil:
				errs[i] = ErrClosed
			case res.Error != "":
				errs[i] = errors.New(res.Error)
			case calls[i].Out != nil && len(res.Body) > 0:
				errs[i] = json.Unmarshal(res.Body, calls[i].Out)
			}
		case <-timeout:
			p.mu.Lock()
			delete(p.pending, ids[i])
			p.mu.Unlock()
			errs[i] = fmt.Errorf("%w: %s", ErrCallTimeout, calls[i].Method)
		}
	}
	return errs
}

// Notify sends a one-way notification (no response expected).
func (p *Peer) Notify(method string, in any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return p.send(&frame{Kind: kindNotify, Method: method, Body: body})
}

// Close tears the connection down.
func (p *Peer) Close() error {
	p.shutdown(ErrClosed)
	return nil
}

func (p *Peer) shutdown(err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.closeErr = err
	pending := p.pending
	p.pending = map[uint64]chan *frame{}
	callbacks := p.onClose
	p.onClose = nil
	p.mu.Unlock()

	// Stop the notify dispatcher; undelivered notifications are dropped
	// (the connection is gone — same outcome as frames still in flight).
	p.nmu.Lock()
	p.nclosed = true
	p.nqueue = nil
	p.nbytes = 0
	p.ncond.Broadcast()
	p.nmu.Unlock()

	p.conn.Close()
	for _, ch := range pending {
		ch <- nil
	}
	for _, fn := range callbacks {
		fn(err)
	}
}

// Server accepts connections and hands each to an acceptor that wires up a
// Peer (registering handlers) before its Run loop starts.
type Server struct {
	ln     net.Listener
	accept func(*Peer)
	wg     sync.WaitGroup

	mu     sync.Mutex
	peers  map[*Peer]struct{}
	closed bool
}

// NewServer listens on addr ("127.0.0.1:0" for an ephemeral port) and
// invokes accept for every inbound connection.
func NewServer(addr string, accept func(*Peer)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, accept: accept, peers: make(map[*Peer]struct{})}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) loop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		peer := NewPeer(conn)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.peers[peer] = struct{}{}
		s.mu.Unlock()
		peer.OnClose(func(error) {
			s.mu.Lock()
			delete(s.peers, peer)
			s.mu.Unlock()
		})
		s.accept(peer)
		go peer.Run()
	}
}

// Close stops accepting and closes every live peer.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	peers := make([]*Peer, 0, len(s.peers))
	for p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, p := range peers {
		p.Close()
	}
	s.wg.Wait()
	return err
}

// Dial connects to a wire server. The returned peer is not yet reading:
// register handlers, then start `go peer.Run()` — the same order the
// server side guarantees via its accept callback, so no request can race
// handler registration.
func Dial(addr string) (*Peer, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return NewPeer(conn), nil
}
