package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type echoReq struct {
	Text string `json:"text"`
}

type echoRes struct {
	Text string `json:"text"`
}

// startEcho runs a server answering "echo" and counting "ping" notifies.
func startEcho(t *testing.T) (*Server, *atomic.Int64) {
	t.Helper()
	var pings atomic.Int64
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		p.Handle("echo", func(body json.RawMessage) (any, error) {
			var req echoReq
			if err := json.Unmarshal(body, &req); err != nil {
				return nil, err
			}
			return echoRes{Text: req.Text}, nil
		})
		p.Handle("fail", func(json.RawMessage) (any, error) {
			return nil, errors.New("deliberate failure")
		})
		p.HandleNotify("ping", func(json.RawMessage) { pings.Add(1) })
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, &pings
}

func dial(t *testing.T, addr string) *Peer {
	t.Helper()
	p, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	go p.Run()
	t.Cleanup(func() { p.Close() })
	return p
}

func TestCallRoundTrip(t *testing.T) {
	srv, _ := startEcho(t)
	p := dial(t, srv.Addr())
	var res echoRes
	if err := p.Call("echo", echoReq{Text: "hello"}, &res); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if res.Text != "hello" {
		t.Fatalf("res = %+v", res)
	}
}

func TestCallErrorPropagates(t *testing.T) {
	srv, _ := startEcho(t)
	p := dial(t, srv.Addr())
	err := p.Call("fail", echoReq{}, nil)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestCallUnknownMethod(t *testing.T) {
	srv, _ := startEcho(t)
	p := dial(t, srv.Addr())
	err := p.Call("nonsense", echoReq{}, nil)
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestNotifyDelivered(t *testing.T) {
	srv, pings := startEcho(t)
	p := dial(t, srv.Addr())
	for i := 0; i < 3; i++ {
		if err := p.Notify("ping", nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for pings.Load() != 3 {
		select {
		case <-deadline:
			t.Fatalf("pings = %d", pings.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestBidirectionalCalls(t *testing.T) {
	// Server calls the client back during a request.
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		p.Handle("chain", func(json.RawMessage) (any, error) {
			var res echoRes
			if err := p.Call("client.echo", echoReq{Text: "from-server"}, &res); err != nil {
				return nil, err
			}
			return echoRes{Text: res.Text + "-chained"}, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	p.Handle("client.echo", func(body json.RawMessage) (any, error) {
		var req echoReq
		json.Unmarshal(body, &req)
		return echoRes{Text: req.Text}, nil
	})
	go p.Run()
	defer p.Close()

	var res echoRes
	if err := p.Call("chain", echoReq{}, &res); err != nil {
		t.Fatalf("chain: %v", err)
	}
	if res.Text != "from-server-chained" {
		t.Fatalf("res = %+v", res)
	}
}

func TestConcurrentCalls(t *testing.T) {
	srv, _ := startEcho(t)
	p := dial(t, srv.Addr())
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res echoRes
			msg := fmt.Sprintf("m%d", i)
			if err := p.Call("echo", echoReq{Text: msg}, &res); err != nil {
				errs <- err
				return
			}
			if res.Text != msg {
				errs <- fmt.Errorf("mismatched response: %q != %q", res.Text, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCallTimeout(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		p.Handle("slow", func(json.RawMessage) (any, error) {
			time.Sleep(500 * time.Millisecond)
			return nil, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dial(t, srv.Addr())
	p.SetCallTimeout(50 * time.Millisecond)
	if err := p.Call("slow", nil, nil); !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestPeerCloseFailsPendingCalls(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		p.Handle("hang", func(json.RawMessage) (any, error) {
			time.Sleep(5 * time.Second)
			return nil, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := dial(t, srv.Addr())
	done := make(chan error, 1)
	go func() { done <- p.Call("hang", nil, nil) }()
	time.Sleep(50 * time.Millisecond)
	p.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("pending call err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call never failed after Close")
	}
	// Calls after close fail immediately.
	if err := p.Call("echo", nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close call: %v", err)
	}
}

func TestOnCloseFires(t *testing.T) {
	srv, _ := startEcho(t)
	p := dial(t, srv.Addr())
	fired := make(chan error, 2)
	p.OnClose(func(err error) { fired <- err })
	p.Close()
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("OnClose never fired")
	}
	// Registering after close fires immediately.
	p.OnClose(func(err error) { fired <- err })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("late OnClose never fired")
	}
}

func TestServerCloseDisconnectsPeers(t *testing.T) {
	srv, _ := startEcho(t)
	p := dial(t, srv.Addr())
	closed := make(chan struct{})
	p.OnClose(func(error) { close(closed) })
	srv.Close()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("client peer not closed when server shut down")
	}
}

func TestRemoteAddrNonEmpty(t *testing.T) {
	srv, _ := startEcho(t)
	p := dial(t, srv.Addr())
	if p.RemoteAddr() == "" {
		t.Fatal("empty remote addr")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	srv, _ := startEcho(t)
	p := dial(t, srv.Addr())
	big := strings.Repeat("x", MaxFrameBytes)
	err := p.Call("echo", echoReq{Text: big}, nil)
	if !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v", err)
	}
}

// TestTraceMetadataRoundTrip pins the trace envelope field: metadata sent
// with CallTraced arrives verbatim at a HandleTraced handler, an untraced
// Call arrives with "", and plain Handle handlers never see it at all —
// the interop contract that lets traced and legacy peers mix.
func TestTraceMetadataRoundTrip(t *testing.T) {
	var seen []string
	var mu sync.Mutex
	srv, err := NewServer("127.0.0.1:0", func(p *Peer) {
		p.HandleTraced("traced", func(trace string, body json.RawMessage) (any, error) {
			mu.Lock()
			seen = append(seen, trace)
			mu.Unlock()
			return echoRes{Text: trace}, nil
		})
		p.Handle("legacy", func(body json.RawMessage) (any, error) {
			return echoRes{Text: "ok"}, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	p := dial(t, srv.Addr())

	var res echoRes
	if err := p.CallTraced("traced", "abc123-def456-1", echoReq{}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Text != "abc123-def456-1" {
		t.Fatalf("traced handler saw %q", res.Text)
	}
	if err := p.Call("traced", echoReq{}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Text != "" {
		t.Fatalf("untraced call leaked metadata %q", res.Text)
	}
	// Trace metadata on a method registered via plain Handle must not
	// break the call.
	if err := p.CallTraced("legacy", "some-trace-1", echoReq{}, &res); err != nil || res.Text != "ok" {
		t.Fatalf("legacy handler under traced call: res=%+v err=%v", res, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != "abc123-def456-1" || seen[1] != "" {
		t.Fatalf("seen = %v", seen)
	}
}
