// Package gnf is a from-scratch Go reproduction of "Roaming Edge vNFs
// using Glasgow Network Functions" (Cziva, Jouet, Pezaros — SIGCOMM 2016).
//
// GNF is a container-based NFV framework for the network edge: lightweight
// virtual network functions run in containers on commodity stations (home
// routers, access points), and when a mobile client roams between cells
// its NFs migrate with it, giving consistent, location-transparent service.
//
// The implementation lives under internal/ (see README.md for a guided
// tour, DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation):
//
//   - internal/core     — the System façade assembling a full deployment,
//     including GNFC cloud sites with WAN tunnels, plus the placement
//     invariant auditor
//   - internal/scenario — the deterministic scenario engine replaying the
//     declarative specs under scenarios/ in virtual time
//   - internal/manager  — placement policies, monitoring, roaming
//     orchestration, station failover, cloud offload/recall
//   - internal/agent    — per-station daemon: containers, veths, steering,
//     offload tunnels and detours
//   - internal/nf/...   — the NF framework and eight built-in functions
//   - internal/netem    — veth pairs, link models, the L2/steering switch
//     (service ports, sticky MACs, VLAN-aware rules)
//   - internal/packet   — Ethernet (802.1Q/QinQ)/ARP/IPv4/UDP/TCP/ICMP +
//     DNS and HTTP request/response codecs
//   - internal/container— the container runtime + central image repository
//   - internal/baseline — the VM-based NFV comparator
//
// The benchmarks in bench_test.go regenerate every experiment (E1–E9 in
// EXPERIMENTS.md), cmd/gnf-bench prints the same scenarios as tables; the
// examples/ directory holds seven runnable scenarios; cmd/ holds the
// manager, agent, CLI, demo and bench binaries.
package gnf
