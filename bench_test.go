// Benchmarks regenerating the paper's evaluation (see EXPERIMENTS.md for
// the experiment index and the paper-vs-measured record):
//
//	E1 / Fig.2  BenchmarkFig2RoamingMigration      roaming with live traffic
//	E2          BenchmarkE2InstantiationContainerVsVM  attach latency
//	E3          BenchmarkE3DensityFootprint        NFs per edge box
//	E4          BenchmarkE4ChainThroughput         dataplane vs chain length
//	E4          BenchmarkE4PerNFThroughput         per-NF-type forwarding
//	E5          BenchmarkE5ControlPlaneScale       manager vs #agents
//	E5          BenchmarkE5SharingDensity          shared pools on vs off, 1k clients
//	E6          BenchmarkE6MigrationStrategies     cold vs stateful ablation
//	E6          BenchmarkE6LiveMigration           stop-and-copy vs pre-copy by state size
//	E7          BenchmarkE7NotificationPipeline    NF->Agent->Manager alerts
//	E7          BenchmarkE7QoSPlacement            least-loaded vs latency-aware chain RTT
//	E8          BenchmarkE8OffloadAblation         GNFC edge vs cloud hosting
//	E8          BenchmarkE8BatchedDataplane        batched vs per-frame pipeline
//	E9          BenchmarkE9FailoverRecovery        station-crash recovery
//	E9          BenchmarkE9TraceOverhead           dataplane cost of 1% frame sampling
//	E10         BenchmarkE10HandoffStorm           2k-client handoff storm, serial vs parallel
//	E11         BenchmarkE11SplitChain             split-chain head-only vs whole-chain roaming
//
// Custom metrics use b.ReportMetric: modeled costs (virtual-clock time) are
// reported as *_ms metrics; counts as their own units.
package gnf

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strconv"
	"testing"
	"time"

	"gnf/internal/agent"
	"gnf/internal/baseline"
	"gnf/internal/clock"
	"gnf/internal/container"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/metrics"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/traffic"
	"gnf/internal/wire"

	"gnf/internal/netem"

	_ "gnf/internal/nf/builtin"
)

// newBenchSwitch builds a minimal station switch with an unconnected
// uplink, enough dataplane for a control-plane-only agent.
func newBenchSwitch(name string) *netem.Switch {
	sw := netem.NewSwitch(name)
	up, _ := netem.NewVethPair(name+"-up", name+"-core")
	sw.Attach(0, up)
	return sw
}

var (
	benchPhoneMAC  = packet.MAC{2, 0, 0, 0, 0, 0x10}
	benchPhoneIP   = packet.IP{10, 0, 0, 10}
	benchServerMAC = packet.MAC{2, 0, 0, 0, 0, 0x99}
	benchServerIP  = packet.IP{10, 99, 0, 1}
)

func benchSystem(b *testing.B, strategy manager.Strategy, clk clock.Clock) *core.System {
	b.Helper()
	sys, err := core.NewSystem(core.Config{
		Clock:          clk,
		Strategy:       strategy,
		ReportInterval: time.Hour, // reports off the hot path
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []core.CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	if err := sys.AddClient("phone", benchPhoneMAC, benchPhoneIP); err != nil {
		b.Fatal(err)
	}
	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		b.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 10*time.Second); err != nil {
		b.Fatal(err)
	}
	return sys
}

// --- E1 / Fig. 2: roaming with live traffic -------------------------------

// BenchmarkFig2RoamingMigration reproduces the demo: a client streaming CBR
// roams between cells; its chain migrates. Reported metrics: measured
// migration downtime and packets lost per handoff (wall clock, real TCP
// control plane).
func BenchmarkFig2RoamingMigration(b *testing.B) {
	sys := benchSystem(b, manager.StrategyStateful, clock.System())
	server := sys.AddServer("web", benchServerMAC, benchServerIP)
	server.Learn(benchPhoneIP, benchPhoneMAC)
	sink := traffic.NewSink(server, 7000, sys.Clock)
	sys.ClientHost("phone").Learn(benchServerIP, benchServerMAC)

	spec := manager.ChainSpec{
		Name: "chain",
		Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
			{Kind: "counter", Name: "acct"},
		},
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		b.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "chain", 10*time.Second); err != nil {
		b.Fatal(err)
	}

	cells := []topology.CellID{"cell-b", "cell-a"}
	stations := []topology.StationID{"st-b", "st-a"}
	var seq uint64
	const pps, perPhase = 200, 100

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stream during the handoff.
		done := make(chan struct{})
		go func(start uint64) {
			defer close(done)
			traffic.CBRFrom(sys.ClientHost("phone"),
				packet.Endpoint{Addr: benchServerIP, Port: 7000}, 6000, start, perPhase, 128, pps)
		}(seq)
		if err := sys.Topo.Attach("phone", cells[i%2]); err != nil {
			b.Fatal(err)
		}
		if err := sys.WaitClientAt("phone", stations[i%2], 10*time.Second); err != nil {
			b.Fatal(err)
		}
		if err := sys.WaitChainOn(stations[i%2], "chain", 10*time.Second); err != nil {
			b.Fatal(err)
		}
		sys.ClientHost("phone").Learn(benchServerIP, benchServerMAC)
		<-done
		seq += perPhase
	}
	b.StopTimer()
	time.Sleep(100 * time.Millisecond) // drain in flight

	migs := sys.Manager.Migrations()
	var downtime time.Duration
	for _, m := range migs {
		downtime += m.Downtime
	}
	if len(migs) > 0 {
		b.ReportMetric(float64(downtime.Milliseconds())/float64(len(migs)), "downtime_ms/roam")
	}
	rep := sink.Analyze(int(seq))
	b.ReportMetric(float64(rep.Lost)/float64(b.N), "pkts_lost/roam")
	b.ReportMetric(float64(rep.Received), "pkts_delivered")
}

// --- E2: instantiation latency, container vs VM ---------------------------

// BenchmarkE2InstantiationContainerVsVM measures NF attach latency (create
// + start, with cold or warm image cache) on the virtual clock: the
// modeled latency is reported as attach_ms, the paper's container-vs-VM
// agility gap.
func BenchmarkE2InstantiationContainerVsVM(b *testing.B) {
	img := container.Image{Name: "gnf/firewall:1.0", SizeBytes: 4 << 20, MemoryBytes: 6 << 20}
	cases := []struct {
		name string
		vm   bool
		warm bool
	}{
		{"container-cold", false, false},
		{"container-warm", false, true},
		{"vm-cold", true, false},
		{"vm-warm", true, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			clk := clock.NewAutoVirtual()
			repo := container.NewRepository(clk, 100_000_000, 5*time.Millisecond)
			repo.Push(img)
			vmRepo := baseline.NewVMRepository(clk, repo, 100_000_000, 0)
			var total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				var rt *container.Runtime
				name := img.Name
				if c.vm {
					rt = baseline.NewVMRuntime("edge", clk, vmRepo)
					name = "vm/" + img.Name
				} else {
					rt = container.NewRuntime("edge", clk, repo)
				}
				if c.warm {
					if err := rt.PrefetchImage(name); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				start := clk.Now()
				ctr, err := rt.Create(container.Config{Name: "nf", Image: name})
				if err != nil {
					b.Fatal(err)
				}
				if err := ctr.Start(); err != nil {
					b.Fatal(err)
				}
				total += clk.Since(start)
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "attach_ms")
		})
	}
}

// --- E3: density and footprint ---------------------------------------------

// BenchmarkE3DensityFootprint packs a 1 GiB edge box with NFs until memory
// exhausts, container vs VM. Reported metric: NFs packed.
func BenchmarkE3DensityFootprint(b *testing.B) {
	img := container.Image{Name: "gnf/firewall:1.0", SizeBytes: 4 << 20, MemoryBytes: 6 << 20}
	const hostMem = 1 << 30
	for _, vm := range []bool{false, true} {
		name := "container"
		if vm {
			name = "vm"
		}
		b.Run(name, func(b *testing.B) {
			var packed int
			for i := 0; i < b.N; i++ {
				clk := clock.NewAutoVirtual()
				repo := container.NewRepository(clk, 0, 0)
				repo.Push(img)
				var rt *container.Runtime
				image := img.Name
				if vm {
					rt = baseline.NewVMRuntime("edge", clk, baseline.NewVMRepository(clk, repo, 0, 0),
						container.WithCapacity(hostMem))
					image = "vm/" + img.Name
				} else {
					rt = container.NewRuntime("edge", clk, repo, container.WithCapacity(hostMem))
				}
				packed = 0
				for {
					if _, err := rt.Create(container.Config{Image: image}); err != nil {
						break
					}
					packed++
				}
			}
			b.ReportMetric(float64(packed), "nfs_packed")
			b.ReportMetric(float64(hostMem)/float64(packed)/(1<<20), "MiB/nf")
		})
	}
}

// --- E4: dataplane throughput ----------------------------------------------

func mkChain(b *testing.B, length int) *nf.Chain {
	b.Helper()
	fns := make([]nf.Function, 0, length)
	for i := 0; i < length; i++ {
		fn, err := nf.Default.New("firewall", fmt.Sprintf("fw%d", i),
			nf.Params{"policy": "accept", "rules": "drop out tcp any any any 23"})
		if err != nil {
			b.Fatal(err)
		}
		fns = append(fns, fn)
	}
	return nf.NewChain("bench", fns...)
}

// BenchmarkE4ChainThroughput pushes frames through chains of 0..5 firewall
// NFs at three frame sizes: the transparent-chaining cost curve.
func BenchmarkE4ChainThroughput(b *testing.B) {
	for _, chainLen := range []int{0, 1, 2, 3, 5} {
		for _, size := range []int{64, 512, 1500} {
			b.Run(fmt.Sprintf("len%d/%dB", chainLen, size), func(b *testing.B) {
				chain := mkChain(b, chainLen)
				payload := make([]byte, size-42) // 42B of Ethernet+IP+UDP headers
				frame := packet.BuildUDP(benchPhoneMAC, benchServerMAC, benchPhoneIP, benchServerIP, 6000, 7000, payload)
				b.SetBytes(int64(len(frame)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out := chain.Process(nf.Outbound, frame)
					if len(out.Forward) != 1 {
						b.Fatal("frame lost in chain")
					}
				}
			})
		}
	}
}

// BenchmarkE4PerNFThroughput forwards a workload-appropriate frame through
// each built-in NF type.
func BenchmarkE4PerNFThroughput(b *testing.B) {
	dnsWire, _ := packet.NewDNSQuery(1, "svc.gnf").Append(nil)
	httpFrame := traffic.HTTPRequestFrame(benchPhoneMAC, benchServerMAC, benchPhoneIP, benchServerIP, 41000, "ok.example", "/")
	udpFrame := packet.BuildUDP(benchPhoneMAC, benchServerMAC, benchPhoneIP, benchServerIP, 6000, 7000, make([]byte, 470))
	dnsFrame := packet.BuildUDP(benchPhoneMAC, benchServerMAC, benchPhoneIP, benchServerIP, 6000, 53, dnsWire)

	cases := []struct {
		kind   string
		params nf.Params
		frame  []byte
	}{
		{"firewall", nf.Params{"policy": "accept", "rules": "drop out tcp any any any 23; drop in udp any any any 111"}, udpFrame},
		{"httpfilter", nf.Params{"block_hosts": "ads.example"}, httpFrame},
		{"httpcache", nf.Params{}, httpFrame},
		{"dnslb", nf.Params{"service": "svc.gnf", "backends": "10.1.0.1,10.1.0.2"}, dnsFrame},
		{"ratelimit", nf.Params{"rate_bps": "10000000000", "burst_bytes": "1000000000"}, udpFrame},
		{"nat", nf.Params{"nat_ip": "192.168.100.1"}, udpFrame},
		{"dnscache", nf.Params{}, dnsFrame},
		{"counter", nf.Params{}, udpFrame},
	}
	for _, c := range cases {
		b.Run(c.kind, func(b *testing.B) {
			fn, err := nf.Default.New(c.kind, "bench", c.params)
			if err != nil {
				b.Fatal(err)
			}
			// The working frame is refreshed from a master every
			// iteration: rewriting NFs (NAT) mutate it in place, and
			// re-processing the rewritten frame would mint a new flow
			// mapping per iteration instead of measuring steady state.
			frame := packet.Clone(c.frame)
			b.SetBytes(int64(len(frame)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(frame, c.frame)
				fn.Process(nf.Outbound, frame)
			}
		})
	}
}

// BenchmarkE4SteeredForwarding measures the path E4's chain numbers
// abstract away: client veth -> station switch (flow-cached steering into
// the chain's service ports) -> NF chain -> backhaul -> server sink, end
// to end through the live dataplane. Repeated frames of one flow ride the
// switch's per-flow verdict cache after the first packet.
func BenchmarkE4SteeredForwarding(b *testing.B) {
	sys := benchSystem(b, manager.StrategyStateful, clock.System())
	server := sys.AddServer("web", benchServerMAC, benchServerIP)
	server.Learn(benchPhoneIP, benchPhoneMAC)
	sink := traffic.NewSink(server, 7000, sys.Clock)
	phone := sys.ClientHost("phone")
	phone.Learn(benchServerIP, benchServerMAC)
	spec := manager.ChainSpec{
		Name: "chain",
		Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
			{Kind: "counter", Name: "acct"},
		},
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		b.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "chain", 10*time.Second); err != nil {
		b.Fatal(err)
	}

	payload := make([]byte, 470) // 512B frames on the wire
	dst := packet.Endpoint{Addr: benchServerIP, Port: 7000}
	b.SetBytes(512)
	b.ResetTimer()
	windowDeadline := time.Now().Add(30 * time.Second)
	for i := 0; i < b.N; i++ {
		// Window in-flight frames below the veth queue depth: sends
		// tail-drop silently under overload and the sink wait below
		// would hang.
		for i-sink.Count() >= 256 {
			if time.Now().After(windowDeadline) {
				b.Fatalf("in-flight window stalled: delivered %d of %d sent", sink.Count(), i)
			}
			time.Sleep(50 * time.Microsecond)
		}
		binary.BigEndian.PutUint64(payload, uint64(i))
		phone.SendUDP(dst, 6000, payload)
	}
	deadline := time.After(30 * time.Second)
	for sink.Count() < b.N {
		select {
		case <-deadline:
			b.Fatalf("delivered %d of %d", sink.Count(), b.N)
		case <-time.After(time.Millisecond):
		}
	}
}

// --- E5: control-plane scalability -----------------------------------------

// BenchmarkE5ControlPlaneScale connects N agents to one manager and
// measures round-trip RPC latency (agent.ping fan-out) while health
// reports stream in the background — the §3 monitoring plane under load.
func BenchmarkE5ControlPlaneScale(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(strconv.Itoa(n)+"-agents", func(b *testing.B) {
			mgr, err := manager.New(clock.System(), "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			clk := clock.NewAutoVirtual()
			repo := container.NewRepository(clk, 0, 0)
			for _, kind := range []string{"firewall"} {
				repo.Push(container.Image{Name: agent.ImageForKind(kind), SizeBytes: 1 << 20, MemoryBytes: 1 << 20})
			}
			handles := make([]*manager.AgentHandle, 0, n)
			for i := 0; i < n; i++ {
				st := fmt.Sprintf("st-%03d", i)
				rt := container.NewRuntime(st, clk, repo)
				sw := newBenchSwitch(st)
				ag := agent.New(topology.StationID(st), clk, rt, sw, 0)
				link, err := agent.Connect(ag, mgr.Addr(), 20*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				defer link.Close()
			}
			deadline := time.After(10 * time.Second)
			for len(mgr.Agents()) != n {
				select {
				case <-deadline:
					b.Fatalf("agents = %d", len(mgr.Agents()))
				case <-time.After(time.Millisecond):
				}
			}
			for _, st := range mgr.Agents() {
				h, _ := mgr.AgentHandleFor(st)
				handles = append(handles, h)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := handles[i%len(handles)]
				if err := h.Ping(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5SharingDensity deploys the same shareable firewall+counter
// chain spec for 1000 clients on one station, with the shared instance
// pool enabled vs disabled (the paper's one-container-per-client layout).
// Reported metrics: containers actually running, container memory in MiB,
// and modeled virtual time for the 1000 deploys — the deployment-cost gap
// VNF sharing exists to close.
func BenchmarkE5SharingDensity(b *testing.B) {
	const clients = 1000
	for _, sharing := range []bool{true, false} {
		name := "sharing-on"
		if !sharing {
			name = "sharing-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clk := clock.NewAutoVirtual()
				repo := container.NewRepository(clk, 0, 0)
				for _, kind := range []string{"firewall", "counter"} {
					repo.Push(container.Image{Name: agent.ImageForKind(kind), SizeBytes: 4 << 20, MemoryBytes: 6 << 20})
				}
				rt := container.NewRuntime("edge", clk, repo)
				var opts []agent.Option
				if !sharing {
					opts = append(opts, agent.WithSharingDisabled())
				}
				ag := agent.New("edge", clk, rt, newBenchSwitch("edge"), 0, opts...)
				start := clk.Now()
				for c := 0; c < clients; c++ {
					id := fmt.Sprintf("c%04d", c)
					ag.AttachClient(topology.ClientID(id),
						packet.MAC{2, 0, 1, 0, byte(c >> 8), byte(c)},
						packet.IP{10, 1, byte(c >> 8), byte(c)}, netem.PortID(100+c))
					if _, err := ag.Deploy(agent.DeploySpec{
						Chain:  "fw-" + id,
						Client: id,
						Functions: []agent.NFSpec{
							{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
							{Kind: "counter", Name: "acct"},
						},
						Enabled: true,
					}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(rt.List())), "containers")
				b.ReportMetric(float64(rt.MemoryInUse())/(1<<20), "mem_mib")
				b.ReportMetric(float64(clk.Since(start).Milliseconds()), "deploy_ms")
			}
		})
	}
}

// --- E6: migration strategy ablation ---------------------------------------

// BenchmarkE6MigrationStrategies migrates a stateful NAT chain between two
// stations on the virtual clock, ablating cold vs stateful strategies and
// state sizes. Reported metric: modeled downtime per migration.
func BenchmarkE6MigrationStrategies(b *testing.B) {
	for _, strat := range []manager.Strategy{manager.StrategyCold, manager.StrategyStateful} {
		for _, flows := range []int{0, 1000, 16000} {
			b.Run(fmt.Sprintf("%s/%dflows", strat, flows), func(b *testing.B) {
				clk := clock.NewAutoVirtual()
				sys := benchSystem(b, strat, clk)
				spec := manager.ChainSpec{
					Name: "nat-chain",
					Functions: []agent.NFSpec{{
						Kind: "nat", Name: "nat0",
						Params: nf.Params{"nat_ip": "192.168.100.1", "ports": "30000-62000"},
					}},
				}
				if err := sys.AttachChain("phone", spec); err != nil {
					b.Fatal(err)
				}
				if err := sys.WaitChainOn("st-a", "nat-chain", 10*time.Second); err != nil {
					b.Fatal(err)
				}
				// Seed NAT state by processing synthetic flows directly.
				chainFn, err := sys.Agent("st-a").ChainFunction("nat-chain")
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < flows; i++ {
					frame := packet.BuildUDP(benchPhoneMAC, benchServerMAC, benchPhoneIP, benchServerIP,
						uint16(i%60000+1), 53, nil)
					chainFn.Process(nf.Outbound, frame)
				}
				targets := []string{"st-b", "st-a"}
				var downtime, total time.Duration
				var stateBytes int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := sys.Manager.MigrateChain("phone", "nat-chain", targets[i%2])
					if err != nil {
						b.Fatal(err)
					}
					downtime += rep.Downtime
					total += rep.Total
					stateBytes = rep.StateBytes
				}
				b.ReportMetric(float64(downtime.Milliseconds())/float64(b.N), "downtime_ms")
				b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "total_ms")
				b.ReportMetric(float64(stateBytes)/1024, "state_KiB")
			})
		}
	}
}

// BenchmarkE6LiveMigration compares stop-and-copy (stateful) against the
// pre-copy live pipeline across state sizes. Counter state grows with
// seeded flows until the chain's exported blob reaches the target size, so
// both strategies migrate identical state. Stop-and-copy downtime grows
// linearly with state (checkpoint+restore sit inside the freeze); live
// downtime stays flat — only the residual delta ships frozen.
func BenchmarkE6LiveMigration(b *testing.B) {
	for _, strat := range []manager.Strategy{manager.StrategyStateful, manager.StrategyLive} {
		for _, kib := range []int{64, 512, 4096} {
			b.Run(fmt.Sprintf("%s/%dKiB", strat, kib), func(b *testing.B) {
				clk := clock.NewAutoVirtual()
				sys := benchSystem(b, strat, clk)
				// nat+counter: a stateful, non-shareable chain, so migration
				// exercises the container checkpoint/restore cost model (a
				// shareable chain would ride the pool's costless export).
				spec := manager.ChainSpec{
					Name: "edge-chain",
					Functions: []agent.NFSpec{
						{Kind: "nat", Name: "nat0", Params: nf.Params{"nat_ip": "192.168.88.1", "ports": "2000-63000"}},
						{Kind: "counter", Name: "acct0"},
					},
				}
				if err := sys.AttachChain("phone", spec); err != nil {
					b.Fatal(err)
				}
				if err := sys.WaitChainOn("st-a", "edge-chain", 10*time.Second); err != nil {
					b.Fatal(err)
				}
				chainFn, err := sys.Agent("st-a").ChainFunction("edge-chain")
				if err != nil {
					b.Fatal(err)
				}
				// Seed distinct flows until the exported state reaches the
				// target size.
				target := kib * 1024
				flows := 0
				for {
					state, err := chainFn.ExportState()
					if err != nil {
						b.Fatal(err)
					}
					if len(state) >= target {
						break
					}
					for i := 0; i < 512; i++ {
						n := flows + i
						frame := packet.BuildUDP(benchPhoneMAC, benchServerMAC,
							benchPhoneIP, benchServerIP,
							uint16(n%60000+2001), 53, nil)
						chainFn.Process(nf.Outbound, frame)
					}
					flows += 512
				}
				targets := []string{"st-b", "st-a"}
				var downtime, total time.Duration
				var stateBytes, rounds int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rep, err := sys.Manager.MigrateChain("phone", "edge-chain", targets[i%2])
					if err != nil {
						b.Fatal(err)
					}
					downtime += rep.Downtime
					total += rep.Total
					stateBytes = rep.StateBytes
					rounds += rep.Rounds
				}
				b.ReportMetric(float64(downtime.Microseconds())/float64(b.N)/1000, "downtime_ms")
				b.ReportMetric(float64(total.Microseconds())/float64(b.N)/1000, "total_ms")
				b.ReportMetric(float64(stateBytes)/1024, "state_KiB")
				b.ReportMetric(float64(rounds)/float64(b.N), "rounds")
			})
		}
	}
}

// --- E7: notification pipeline ----------------------------------------------

// BenchmarkE7NotificationPipeline measures NF->Agent->Manager alert
// delivery end to end over the live control plane.
func BenchmarkE7NotificationPipeline(b *testing.B) {
	sys := benchSystem(b, manager.StrategyStateful, clock.System())
	server := sys.AddServer("web", benchServerMAC, benchServerIP)
	server.Learn(benchPhoneIP, benchPhoneMAC)
	sys.ClientHost("phone").Learn(benchServerIP, benchServerMAC)
	spec := manager.ChainSpec{
		Name: "ids",
		Functions: []agent.NFSpec{{
			Kind: "counter", Name: "ids0",
			Params: nf.Params{"signatures": "sig-marker"},
		}},
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		b.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "ids", 10*time.Second); err != nil {
		b.Fatal(err)
	}
	phone := sys.ClientHost("phone")
	payload := []byte("sig-marker event payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phone.SendUDP(packet.Endpoint{Addr: benchServerIP, Port: 7100}, 6002, payload)
	}
	deadline := time.After(30 * time.Second)
	for len(sys.Manager.Notifications()) < b.N {
		select {
		case <-deadline:
			b.Fatalf("notifications = %d of %d", len(sys.Manager.Notifications()), b.N)
		case <-time.After(time.Millisecond):
		}
	}
}

// benchCloudSystem is benchSystem plus a GNFC cloud site "nimbus" behind a
// 5 ms WAN.
func benchCloudSystem(b *testing.B, strategy manager.Strategy) *core.System {
	b.Helper()
	sys, err := core.NewSystem(core.Config{
		Clock:          clock.System(),
		Strategy:       strategy,
		ReportInterval: time.Hour,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []core.CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
		Clouds: []core.CloudConfig{{ID: "nimbus", WAN: netem.LinkParams{Delay: 5 * time.Millisecond}}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(sys.Close)
	if err := sys.AddClient("phone", benchPhoneMAC, benchPhoneIP); err != nil {
		b.Fatal(err)
	}
	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		b.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 10*time.Second); err != nil {
		b.Fatal(err)
	}
	return sys
}

// --- E7: QoS placement ablation --------------------------------------------

// benchQoSAgent is a minimal wire-level station for control-plane-only
// placement benches: it acks every chain RPC and can push a CPU report.
type benchQoSAgent struct {
	peer    *wire.Peer
	station string
}

func newBenchQoSAgent(b *testing.B, mgr *manager.Manager, station string) *benchQoSAgent {
	b.Helper()
	peer, err := wire.Dial(mgr.Addr())
	if err != nil {
		b.Fatal(err)
	}
	ok := func(json.RawMessage) (any, error) { return nil, nil }
	for _, m := range []string{agent.MethodDeploy, agent.MethodRemove, agent.MethodEnable,
		agent.MethodDisable, agent.MethodRestore, agent.MethodPrefetch} {
		peer.Handle(m, ok)
	}
	peer.Handle(agent.MethodCheckpoint, func(json.RawMessage) (any, error) {
		return agent.CheckpointResult{State: []byte("blob")}, nil
	})
	go peer.Run()
	if err := peer.Call(agent.MethodRegister, agent.RegisterSpec{Station: station}, nil); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { peer.Close() })
	return &benchQoSAgent{peer: peer, station: station}
}

func (a *benchQoSAgent) report(cpu float64) {
	a.peer.Notify(agent.MethodReport, agent.Report{
		Station: a.station,
		Usage:   metrics.ResourceUsage{CPUPercent: cpu},
	})
}

// BenchmarkE7QoSPlacement compares mean chain RTT under least-loaded vs
// latency-aware placement on the same mobility trace: a client circles a
// six-station metro ring (5ms hops), and at every dwell its station is
// drained for maintenance, forcing the policy to re-place the chain.
// Least-loaded chases the idle station wherever it sits on the ring;
// latency-aware keeps the chain one hop away. Reported metrics: mean
// predicted client<->chain RTT per re-placement, and control-plane
// migrations per trace.
func BenchmarkE7QoSPlacement(b *testing.B) {
	stations := []string{"st-0", "st-1", "st-2", "st-3", "st-4", "st-5"}
	ids := make([]topology.StationID, len(stations))
	for i, st := range stations {
		ids[i] = topology.StationID(st)
	}
	// One idle box far around the ring; the rest moderately loaded.
	loads := map[string]float64{
		"st-0": 50, "st-1": 40, "st-2": 45, "st-3": 2, "st-4": 45, "st-5": 40,
	}
	for _, polName := range []string{"least-loaded", "latency-aware"} {
		b.Run(polName, func(b *testing.B) {
			var sumRTT time.Duration
			picks, migrations := 0, 0
			for i := 0; i < b.N; i++ {
				mgr, err := manager.New(clock.System(), "127.0.0.1:0",
					manager.WithStrategy(manager.StrategyCold))
				if err != nil {
					b.Fatal(err)
				}
				ring := topology.Ring(ids, 5*time.Millisecond, 1_000_000_000)
				mgr.SetTopology(ring)
				pol, ok := manager.PlacementFor(polName)
				if !ok {
					b.Fatalf("unknown policy %q", polName)
				}
				mgr.SetPlacement(pol)
				agents := make(map[string]*benchQoSAgent, len(stations))
				for _, st := range stations {
					agents[st] = newBenchQoSAgent(b, mgr, st)
					agents[st].report(loads[st])
				}
				deadline := time.After(10 * time.Second)
				for {
					fresh := 0
					for _, si := range mgr.StationInfos() {
						if !si.Stale {
							fresh++
						}
					}
					if fresh == len(stations) {
						break
					}
					select {
					case <-deadline:
						b.Fatalf("only %d stations reported", fresh)
					case <-time.After(200 * time.Microsecond):
					}
				}
				if err := agents["st-0"].peer.Call(agent.MethodClientEvent,
					agent.ClientEvent{Station: "st-0", Client: "phone", Connected: true}, nil); err != nil {
					b.Fatal(err)
				}
				mgr.WaitIdle()
				if err := mgr.AttachChain("phone", manager.ChainSpec{
					Name:      "chain",
					Functions: []agent.NFSpec{{Kind: "counter", Name: "acct"}},
				}); err != nil {
					b.Fatal(err)
				}
				for s, cur := range stations {
					if s > 0 {
						// Handoff: the chain follows the client to cur.
						if err := agents[cur].peer.Call(agent.MethodClientEvent,
							agent.ClientEvent{Station: cur, Client: "phone", Connected: true}, nil); err != nil {
							b.Fatal(err)
						}
						mgr.WaitIdle()
					}
					// Maintenance drain: the policy picks the chain's refuge.
					reports, err := mgr.EvacuateStation(cur)
					if err != nil {
						b.Fatal(err)
					}
					if len(reports) != 1 || reports[0].Err != "" {
						b.Fatalf("evacuation reports = %+v", reports)
					}
					rtt, ok := ring.RTT(topology.StationID(cur), topology.StationID(reports[0].To))
					if !ok {
						b.Fatalf("no path %s -> %s", cur, reports[0].To)
					}
					sumRTT += rtt
					picks++
				}
				migrations += len(mgr.Migrations())
				mgr.Close()
			}
			b.ReportMetric(float64(sumRTT.Microseconds())/float64(picks)/1000, "ms_chain_rtt")
			b.ReportMetric(float64(migrations)/float64(b.N), "migrations")
		})
	}
}

// BenchmarkE8OffloadAblation — experiment E8 (GNFC, reference [2] of the
// paper): edge-hosted vs cloud-offloaded chains. Roaming an offloaded
// client is a steering update (no chain moves, ~0 downtime); the price is
// a WAN round-trip on every packet. Four sub-benches report per-roam
// downtime and per-request RTT for both placements.
func BenchmarkE8OffloadAblation(b *testing.B) {
	spec := manager.ChainSpec{
		Name: "chain",
		Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
			{Kind: "counter", Name: "acct"},
		},
	}
	roam := func(b *testing.B, sys *core.System, offloaded bool) {
		cells := []topology.CellID{"cell-b", "cell-a"}
		stations := []topology.StationID{"st-b", "st-a"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.Topo.Attach("phone", cells[i%2]); err != nil {
				b.Fatal(err)
			}
			if err := sys.WaitClientAt("phone", stations[i%2], 10*time.Second); err != nil {
				b.Fatal(err)
			}
			if !offloaded {
				if err := sys.WaitChainOn(stations[i%2], "chain", 10*time.Second); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		var downtime time.Duration
		n := 0
		for _, m := range sys.Manager.Migrations() {
			if m.Err == "" && (m.Strategy == manager.StrategySteer) == offloaded {
				downtime += m.Downtime
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(float64(downtime.Microseconds())/float64(n)/1000, "downtime_ms/roam")
		}
	}
	rtt := func(b *testing.B, sys *core.System) {
		phone := sys.ClientHost("phone")
		phone.Learn(benchServerIP, benchServerMAC)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ch, err := phone.Ping(benchServerIP, 7, uint16(i))
			if err != nil {
				b.Fatal(err)
			}
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				b.Fatal("ping lost")
			}
		}
	}
	setup := func(b *testing.B, offload bool) *core.System {
		sys := benchCloudSystem(b, manager.StrategyStateful)
		server := sys.AddServer("web", benchServerMAC, benchServerIP)
		server.Learn(benchPhoneIP, benchPhoneMAC)
		if err := sys.AttachChain("phone", spec); err != nil {
			b.Fatal(err)
		}
		if err := sys.WaitChainOn("st-a", "chain", 10*time.Second); err != nil {
			b.Fatal(err)
		}
		if offload {
			if err := sys.OffloadClient("phone", "nimbus"); err != nil {
				b.Fatal(err)
			}
		}
		return sys
	}

	b.Run("roam/edge", func(b *testing.B) { roam(b, setup(b, false), false) })
	b.Run("roam/offloaded", func(b *testing.B) { roam(b, setup(b, true), true) })
	b.Run("rtt/edge", func(b *testing.B) { rtt(b, setup(b, false)) })
	b.Run("rtt/offloaded", func(b *testing.B) { rtt(b, setup(b, true)) })
}

// --- E8 addendum: batched dataplane ----------------------------------------

// newE8Switch builds a station switch serving 128 clients' worth of
// steering entries — none matching the benchmark flow, so a verdict miss
// pays the full scan — plus one InPort rule redirecting the bench flow to
// a service port. The egress pair is closed: Send is an O(1) recycle, so
// the benchmark prices the verdict pipeline itself rather than delivery
// goroutines (the same trick BenchmarkSwitchForwardParallel uses with
// peerless endpoints).
func newE8Switch() (*netem.Switch, []byte) {
	sw := netem.NewSwitch("e8")
	ingress, _ := netem.NewVethPair("e8-in", "e8-in-peer")
	egress, _ := netem.NewVethPair("e8-out", "e8-out-peer")
	sw.Attach(1, ingress)
	sw.AttachService(100, egress)
	egress.Close()
	proto := uint8(packet.ProtoUDP)
	for i := 0; i < 128; i++ {
		ip := packet.IP{10, 0, 1, byte(i)}
		port := uint16(7000 + i)
		sw.AddRule(netem.Rule{Priority: 10,
			Match:  netem.Match{Proto: &proto, SrcIP: &ip, DstPort: &port},
			Action: netem.ActionRedirect, OutPort: netem.PortID(2)})
	}
	in := netem.PortID(1)
	sw.AddRule(netem.Rule{Priority: 20, Match: netem.Match{InPort: &in},
		Action: netem.ActionRedirect, OutPort: netem.PortID(100)})
	tmpl := packet.BuildUDP(benchPhoneMAC, benchServerMAC, benchPhoneIP, benchServerIP,
		6000, 7000, make([]byte, 470))
	return sw, tmpl
}

// BenchmarkE8BatchedDataplane prices one frame through the forwarding
// pipeline against a 128-entry steering table: per-frame Inject vs
// InjectBatch at several batch widths. Every frame is a pooled buffer
// stamped from a template, so allocs/op is allocs per frame — zero in
// steady state on both paths — and the run-detection fast path gets
// same-flow batches, its intended workload. frames/sec is the headline
// metric; the acceptance bar is batched ≥ 3x per-frame.
func BenchmarkE8BatchedDataplane(b *testing.B) {
	inject := func(sw *netem.Switch, tmpl []byte) {
		f := packet.BorrowFrame()[:len(tmpl)]
		copy(f, tmpl)
		sw.Inject(1, f)
	}
	b.Run("per-frame", func(b *testing.B) {
		sw, tmpl := newE8Switch()
		inject(sw, tmpl) // warm the flow cache and the frame pool
		b.SetBytes(int64(len(tmpl)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inject(sw, tmpl)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
	})
	for _, width := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batched-%d", width), func(b *testing.B) {
			sw, tmpl := newE8Switch()
			inject(sw, tmpl)
			batch := make([][]byte, width)
			b.SetBytes(int64(len(tmpl)))
			b.ReportAllocs()
			b.ResetTimer()
			for sent := 0; sent < b.N; sent += width {
				n := width
				if left := b.N - sent; left < n {
					n = left
				}
				// InjectBatch consumes the frames; the slice is ours
				// again once it returns.
				packet.BorrowFrames(batch[:n])
				for j := 0; j < n; j++ {
					batch[j] = append(batch[j], tmpl...)
				}
				sw.InjectBatch(1, batch[:n])
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
		})
	}
}

// BenchmarkE9FailoverRecovery — station failure recovery: wall time from a
// station crash until the Manager has revived every chain it hosted on a
// survivor, as a function of the number of chains lost.
func BenchmarkE9FailoverRecovery(b *testing.B) {
	for _, chains := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("chains=%d", chains), func(b *testing.B) {
			var recovered time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys := benchSystem(b, manager.StrategyStateful, clock.System())
				sys.Manager.EnableFailover(0)
				for c := 0; c < chains; c++ {
					spec := manager.ChainSpec{
						Name:      fmt.Sprintf("chain-%d", c),
						Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}}},
					}
					if err := sys.AttachChain("phone", spec); err != nil {
						b.Fatal(err)
					}
				}
				base := len(sys.Manager.Failovers())
				b.StartTimer()
				start := time.Now()
				if err := sys.KillStation("st-a"); err != nil {
					b.Fatal(err)
				}
				deadline := time.After(30 * time.Second)
				for len(sys.Manager.Failovers())-base < chains {
					select {
					case <-deadline:
						b.Fatalf("failovers = %d of %d", len(sys.Manager.Failovers())-base, chains)
					case <-time.After(200 * time.Microsecond):
					}
				}
				recovered += time.Since(start)
				b.StopTimer()
				for _, rep := range sys.Manager.Failovers() {
					if rep.Err != "" {
						b.Fatalf("failover error: %+v", rep)
					}
				}
				sys.Close()
			}
			b.ReportMetric(float64(recovered.Microseconds())/float64(b.N)/1000, "recovery_ms")
		})
	}
}

// BenchmarkE9TraceOverhead — observability addendum: prices the telemetry
// plane's only dataplane hook, the frame sampler, on the E8 verdict
// pipeline. sampling-off is the baseline (a nil atomic pointer load per
// frame); sampling-1pct arms EnableSampling(100), the default operating
// point. The acceptance bar: zero allocations per frame on both paths and
// < 5% frames/sec regression with sampling armed.
func BenchmarkE9TraceOverhead(b *testing.B) {
	run := func(b *testing.B, every int) {
		sw, tmpl := newE8Switch()
		if every > 0 {
			sw.EnableSampling(every)
		}
		inject := func() {
			f := packet.BorrowFrame()[:len(tmpl)]
			copy(f, tmpl)
			sw.Inject(1, f)
		}
		inject() // warm the flow cache and the frame pool
		b.SetBytes(int64(len(tmpl)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inject()
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
		if every > 0 {
			if want := uint64(b.N+1) / uint64(every); sw.SampledFrames() < want {
				b.Fatalf("sampler slept through the run: %d sampled, want >= %d", sw.SampledFrames(), want)
			}
		}
	}
	b.Run("sampling-off", func(b *testing.B) { run(b, 0) })
	b.Run("sampling-1pct", func(b *testing.B) { run(b, 100) })
}

// --- E10: handoff storm -----------------------------------------------------

// newBenchStormAgent is a wire-level station for handoff-storm benches:
// every chain RPC acks after a fixed service delay, modeling the agent-side
// work (container ops, rule installs) that the parallel pipeline overlaps.
func newBenchStormAgent(b *testing.B, mgr *manager.Manager, station string, delay time.Duration) *benchQoSAgent {
	b.Helper()
	peer, err := wire.Dial(mgr.Addr())
	if err != nil {
		b.Fatal(err)
	}
	slow := func(json.RawMessage) (any, error) {
		time.Sleep(delay)
		return nil, nil
	}
	for _, m := range []string{agent.MethodDeploy, agent.MethodRemove, agent.MethodEnable,
		agent.MethodDisable, agent.MethodRestore, agent.MethodPrefetch,
		agent.MethodSteer, agent.MethodSteerBatch, agent.MethodUnsteer} {
		peer.Handle(m, slow)
	}
	peer.Handle(agent.MethodCheckpoint, func(json.RawMessage) (any, error) {
		time.Sleep(delay)
		return agent.CheckpointResult{State: []byte("blob")}, nil
	})
	go peer.Run()
	if err := peer.Call(agent.MethodRegister, agent.RegisterSpec{Station: station}, nil); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { peer.Close() })
	return &benchQoSAgent{peer: peer, station: station}
}

// BenchmarkE10HandoffStorm — the bus scenario at control-plane scale: 2k
// clients, each with one stateful chain on st-a, all hand off to st-b inside
// one window. "serial" pins the migration pipeline to one worker — the
// pre-shard manager's effective behaviour, since every reconcile serialized
// on the global mutex — while "parallel" runs the default worker pool with
// per-station admission and the overlapped RPC chain. Reported metrics:
// storm convergence wall time, handoffs/sec, and p99 handoff-completion
// latency from the handoff.latency_ms histogram (queue wait included).
func BenchmarkE10HandoffStorm(b *testing.B) {
	const (
		clients  = 2000
		rpcDelay = 200 * time.Microsecond
	)
	run := func(b *testing.B, opts ...manager.Option) {
		var (
			totalStorm time.Duration
			p99        float64
		)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			mgr, err := manager.New(clock.System(), "127.0.0.1:0",
				append([]manager.Option{manager.WithStrategy(manager.StrategyStateful)}, opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			src := newBenchStormAgent(b, mgr, "st-a", rpcDelay)
			dst := newBenchStormAgent(b, mgr, "st-b", rpcDelay)
			_ = dst
			names := make([]string, clients)
			for j := range names {
				names[j] = fmt.Sprintf("c%04d", j)
				if err := src.peer.Call(agent.MethodClientEvent,
					agent.ClientEvent{Station: "st-a", Client: names[j], Connected: true}, nil); err != nil {
					b.Fatal(err)
				}
			}
			mgr.WaitIdle()
			for _, c := range names {
				if err := mgr.AttachChain(c, manager.ChainSpec{
					Name:      "chain-" + c,
					Functions: []agent.NFSpec{{Kind: "counter", Name: "acct"}},
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()

			start := time.Now()
			for _, c := range names {
				if err := dst.peer.Call(agent.MethodClientEvent,
					agent.ClientEvent{Station: "st-b", Client: c, Connected: true}, nil); err != nil {
					b.Fatal(err)
				}
			}
			mgr.WaitIdle()
			storm := time.Since(start)

			b.StopTimer()
			done := 0
			for _, rep := range mgr.Migrations() {
				if rep.To == "st-b" && rep.Err == "" {
					done++
				}
			}
			if done != clients {
				b.Fatalf("lost migrations: %d/%d completed", done, clients)
			}
			totalStorm += storm
			p99 = mgr.MetricsSnapshot().Histograms["handoff.latency_ms"].P99
			mgr.Close()
			b.StartTimer()
		}
		mean := totalStorm / time.Duration(b.N)
		b.ReportMetric(mean.Seconds()*1000, "ms_storm")
		b.ReportMetric(float64(clients)/mean.Seconds(), "handoffs/sec")
		b.ReportMetric(p99, "ms_p99_handoff")
	}
	b.Run("serial", func(b *testing.B) { run(b, manager.WithHandoffWorkers(1)) })
	b.Run("parallel", func(b *testing.B) { run(b) })
}

// --- E11: split-chain migration ---------------------------------------------

// BenchmarkE11SplitChain prices roaming for the same stateful chain
// deployed two ways on the same two-station trace: whole-chain (no
// affinities — every handoff ships the full firewall+nat+counter state)
// vs split-chain (the firewall head is near-client, the nat+counter
// aggregation segment anchors on the hub and never moves — each handoff
// ships only the head's state over the same control plane). Both
// variants seed the identical NAT flow table before roaming, so the gap
// in state_KiB/roam and downtime_ms/roam is purely the partitioning.
func BenchmarkE11SplitChain(b *testing.B) {
	const seedFlows = 8000
	mkSpec := func(split bool) manager.ChainSpec {
		aff := func(tag string) string {
			if split {
				return tag
			}
			return ""
		}
		return manager.ChainSpec{
			Name: "edgepath",
			Functions: []agent.NFSpec{
				{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}, Affinity: aff("near-client")},
				{Kind: "nat", Name: "xlate", Params: nf.Params{"nat_ip": "192.168.90.1", "ports": "2000-63000"}, Affinity: aff("aggregate")},
				{Kind: "counter", Name: "acct"},
			},
		}
	}
	run := func(b *testing.B, split bool) {
		// Two stations joined by a modeled 3ms link, so hub election and
		// the inter-segment tunnel path are live (hub ties break to st-a).
		graph := topology.NewGraph()
		graph.SetLink(topology.Link{A: "st-a", B: "st-b", Delay: 3 * time.Millisecond})
		sys, err := core.NewSystem(core.Config{
			Clock:          clock.System(),
			Strategy:       manager.StrategyStateful,
			ReportInterval: time.Hour,
			Topology:       graph,
			Stations: []core.StationConfig{
				{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
				{ID: "st-b", Cells: []core.CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(sys.Close)
		if err := sys.AddClient("phone", benchPhoneMAC, benchPhoneIP); err != nil {
			b.Fatal(err)
		}
		if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
			b.Fatal(err)
		}
		if err := sys.WaitClientAt("phone", "st-a", 10*time.Second); err != nil {
			b.Fatal(err)
		}
		if err := sys.AttachChain("phone", mkSpec(split)); err != nil {
			b.Fatal(err)
		}
		if err := sys.WaitChainOn("st-a", "edgepath", 10*time.Second); err != nil {
			b.Fatal(err)
		}
		// Seed the NAT flow table where it lives: the anchored segment for
		// the split layout, the single deployment otherwise. Both variants
		// carry the same state; only its placement differs.
		stateful := "edgepath"
		if split {
			stateful = agent.SegmentDeployName("edgepath", 1)
		}
		chainFn, err := sys.Agent("st-a").ChainFunction(stateful)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < seedFlows; i++ {
			frame := packet.BuildUDP(benchPhoneMAC, benchServerMAC, benchPhoneIP, benchServerIP,
				uint16(i%60000+2001), 53, nil)
			chainFn.Process(nf.Outbound, frame)
		}

		cells := []topology.CellID{"cell-b", "cell-a"}
		stations := []topology.StationID{"st-b", "st-a"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.Topo.Attach("phone", cells[i%2]); err != nil {
				b.Fatal(err)
			}
			if err := sys.WaitClientAt("phone", stations[i%2], 10*time.Second); err != nil {
				b.Fatal(err)
			}
			if err := sys.WaitChainOn(stations[i%2], "edgepath", 10*time.Second); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()

		var moved int
		var downtime time.Duration
		roams := 0
		for _, m := range sys.Manager.Migrations() {
			if m.Err != "" {
				b.Fatalf("migration failed: %+v", m)
			}
			if m.Chain != "edgepath" {
				b.Fatalf("unexpected migration of %q: the anchored segment must never move", m.Chain)
			}
			moved += m.StateBytes
			downtime += m.Downtime
			roams++
		}
		if roams != b.N {
			b.Fatalf("migrations = %d, want %d", roams, b.N)
		}
		b.ReportMetric(float64(moved)/float64(b.N)/1024, "state_KiB/roam")
		b.ReportMetric(float64(downtime.Microseconds())/float64(b.N)/1000, "downtime_ms/roam")
	}
	b.Run("whole-chain", func(b *testing.B) { run(b, false) })
	b.Run("split-chain", func(b *testing.B) { run(b, true) })
}
