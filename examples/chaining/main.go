// Chaining: service chains and transparent traffic handling. A client gets
// firewall -> ratelimit -> httpfilter -> counter; the example demonstrates
// HTTP blocking with manager notifications, token-bucket policing, and
// per-NF statistics — the NF portfolio of the paper's demo.
//
//	go run ./examples/chaining
package main

import (
	"fmt"
	"log"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/traffic"
)

func main() {
	sys, err := core.NewSystem(core.Config{
		Stations: []core.StationConfig{{
			ID:    "st-edge",
			Cells: []core.CellConfig{{ID: "cell-1", Center: topology.Point{}, Radius: 100}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	phoneMAC := packet.MAC{2, 0, 0, 0, 0, 0x10}
	phoneIP := packet.IP{10, 0, 0, 10}
	webMAC := packet.MAC{2, 0, 0, 0, 0, 0x99}
	webIP := packet.IP{10, 99, 0, 1}

	if err := sys.AddClient("phone", phoneMAC, phoneIP); err != nil {
		log.Fatal(err)
	}
	web := sys.AddServer("web", webMAC, webIP)
	web.Learn(phoneIP, phoneMAC)
	sink := traffic.NewSink(web, 7000, sys.Clock)

	if err := sys.Topo.Attach("phone", "cell-1"); err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-edge", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	phone := sys.ClientHost("phone")
	phone.Learn(webIP, webMAC)

	// The full demo chain.
	spec := manager.ChainSpec{
		Name: "edge-chain",
		Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept", "rules": "drop out tcp any any any 23"}},
			{Kind: "ratelimit", Name: "rl", Params: nf.Params{"rate_bps": "400000", "burst_bytes": "4000", "direction": "out"}},
			{Kind: "httpfilter", Name: "hf", Params: nf.Params{"block_hosts": "ads.example,tracker.example"}},
			{Kind: "counter", Name: "acct", Params: nf.Params{"signatures": "exfil-marker"}},
		},
	}
	if err := sys.AttachChain("phone", spec); err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitChainOn("st-edge", "edge-chain", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("chain attached: firewall -> ratelimit -> httpfilter -> counter")

	// 1. Rate limiting: offer 100 x 1000B quickly; the 4 KB bucket plus
	//    50 KB/s refill passes only a fraction.
	traffic.CBR(phone, packet.Endpoint{Addr: webIP, Port: 7000}, 6000, 100, 1000, 2000)
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("rate limiter: offered 100 x 1000B, delivered %d\n", sink.Count())

	// 2. HTTP filtering: a request to a blocked ad host is dropped and a
	//    notification reaches the manager.
	blocked := traffic.HTTPRequestFrame(phoneMAC, webMAC, phoneIP, webIP, 41000, "ads.example", "/banner.js")
	phone.Endpoint().Send(blocked)
	allowed := traffic.HTTPRequestFrame(phoneMAC, webMAC, phoneIP, webIP, 41001, "news.example", "/index.html")
	phone.Endpoint().Send(allowed)

	// 3. IDS signature: exfiltration marker raises a warning.
	phone.SendUDP(packet.Endpoint{Addr: webIP, Port: 7100}, 6002, []byte("exfil-marker: secrets"))

	deadline := time.After(5 * time.Second)
	for len(sys.Manager.Notifications()) < 2 {
		select {
		case <-deadline:
			log.Fatalf("only %d notifications arrived", len(sys.Manager.Notifications()))
		case <-time.After(10 * time.Millisecond):
		}
	}
	fmt.Println("\nnotifications at the manager:")
	for _, al := range sys.Manager.Notifications() {
		fmt.Printf("  [%s] %s: %s\n", al.Notification.Severity, al.Notification.NF, al.Notification.Message)
	}

	chainFn, err := sys.Agent("st-edge").ChainFunction("edge-chain")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-NF statistics:")
	stats := chainFn.NFStats()
	for _, k := range []string{"fw.accepted", "rl.passed", "rl.policed", "hf.blocked", "hf.passed", "acct.tracked_flows", "acct.signature_hits"} {
		fmt.Printf("  %-20s %d\n", k, stats[k])
	}
}
