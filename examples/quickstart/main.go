// Quickstart: bring up a one-station GNF edge, attach a firewall NF to a
// client, and watch it filter traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/traffic"
)

func main() {
	// One station serving one cell.
	sys, err := core.NewSystem(core.Config{
		Stations: []core.StationConfig{{
			ID:    "st-home",
			Cells: []core.CellConfig{{ID: "cell-home", Center: topology.Point{}, Radius: 100}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// A client and a server on the backhaul.
	phoneIP := packet.IP{10, 0, 0, 10}
	serverIP := packet.IP{10, 99, 0, 1}
	serverMAC := packet.MAC{2, 0, 0, 0, 0, 0x99}
	if err := sys.AddClient("phone", packet.MAC{2, 0, 0, 0, 0, 0x10}, phoneIP); err != nil {
		log.Fatal(err)
	}
	server := sys.AddServer("web", serverMAC, serverIP)
	server.Learn(phoneIP, packet.MAC{2, 0, 0, 0, 0, 0x10})
	sink := traffic.NewSink(server, 7000, sys.Clock)

	// Associate the phone with the cell (WiFi association).
	if err := sys.Topo.Attach("phone", "cell-home"); err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-home", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	sys.ClientHost("phone").Learn(serverIP, serverMAC)

	// Attach a firewall that blocks UDP port 9999 for this client.
	err = sys.AttachChain("phone", manager.ChainSpec{
		Name: "fw-chain",
		Functions: []agent.NFSpec{{
			Kind:   "firewall",
			Name:   "fw0",
			Params: nf.Params{"policy": "accept", "rules": "drop out udp any any any 9999"},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitChainOn("st-home", "fw-chain", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("firewall NF attached to phone's traffic")

	// Allowed traffic reaches the server; blocked traffic does not.
	phone := sys.ClientHost("phone")
	traffic.CBR(phone, packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, 20, 64, 200)
	phone.SendUDP(packet.Endpoint{Addr: serverIP, Port: 9999}, 6001, []byte{0, 0, 0, 0, 0, 0, 0, 1})
	time.Sleep(300 * time.Millisecond)

	chainFn, err := sys.Agent("st-home").ChainFunction("fw-chain")
	if err != nil {
		log.Fatal(err)
	}
	stats := chainFn.NFStats()
	fmt.Printf("server received:   %d/20 allowed packets\n", sink.Count())
	fmt.Printf("firewall counters: accepted=%d dropped=%d\n", stats["fw0.accepted"], stats["fw0.dropped"])
}
