// Cloudburst: the GNFC extension (reference [2] of the paper) as a
// library example. An edge station runs hot, so the Manager offloads its
// client's chains to a cloud site; the client's traffic detours through a
// WAN tunnel. The example quantifies the trade: roaming becomes a
// steering update (chains never move again), but every packet pays the
// WAN round-trip. Finally the client is recalled to the edge.
//
//	go run ./examples/cloudburst
package main

import (
	"fmt"
	"log"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/netem"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	sys, err := core.NewSystem(core.Config{
		Strategy:       manager.StrategyStateful,
		ReportInterval: 100 * time.Millisecond,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []core.CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
		// One in-region cloud site, 5 ms away.
		Clouds: []core.CloudConfig{{ID: "nimbus", WAN: netem.LinkParams{Delay: 5 * time.Millisecond}}},
	})
	must(err)
	defer sys.Close()

	phoneMAC := packet.MAC{2, 0, 0, 0, 0, 0x10}
	phoneIP := packet.IP{10, 0, 0, 10}
	serverMAC := packet.MAC{2, 0, 0, 0, 0, 0x99}
	serverIP := packet.IP{10, 99, 0, 1}

	must(sys.AddClient("phone", phoneMAC, phoneIP))
	server := sys.AddServer("web", serverMAC, serverIP)
	server.Learn(phoneIP, phoneMAC)
	must(sys.Topo.Attach("phone", "cell-a"))
	must(sys.WaitClientAt("phone", "st-a", 5*time.Second))
	phone := sys.ClientHost("phone")
	phone.Learn(serverIP, serverMAC)

	must(sys.AttachChain("phone", manager.ChainSpec{
		Name: "edge-chain",
		Functions: []agent.NFSpec{
			{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}},
			{Kind: "counter", Name: "acct"},
		},
	}))
	must(sys.WaitChainOn("st-a", "edge-chain", 5*time.Second))

	rtt := func(label string) {
		const pings = 10
		start := time.Now()
		for i := 0; i < pings; i++ {
			ch, err := phone.Ping(serverIP, 9, uint16(i))
			must(err)
			select {
			case <-ch:
			case <-time.After(5 * time.Second):
				log.Fatalf("%s: ping lost", label)
			}
		}
		fmt.Printf("%-28s RTT %v\n", label, (time.Since(start) / pings).Round(10*time.Microsecond))
	}

	fmt.Println("chain at the edge (st-a):")
	rtt("  edge-hosted")

	// The operator (or AutoOffload on a hotspot) bursts the client to the
	// cloud. Chains move once, with state; traffic detours via tunnel.
	fmt.Println("\noffloading phone's chains to cloud site nimbus ...")
	must(sys.OffloadClient("phone", "nimbus"))
	fmt.Printf("chains now on %v; st-a steers the detour\n", sys.Agent("nimbus").Chains())
	rtt("  cloud-hosted (GNFC)")

	// Roaming an offloaded client: no chain moves, only steering.
	fmt.Println("\nroaming phone -> cell-b while offloaded ...")
	must(sys.Topo.Attach("phone", "cell-b"))
	must(sys.WaitClientAt("phone", "st-b", 5*time.Second))
	sys.Manager.WaitIdle()
	phone = sys.ClientHost("phone")
	phone.Learn(serverIP, serverMAC)
	last := sys.Manager.Migrations()[len(sys.Manager.Migrations())-1]
	fmt.Printf("roam handled by strategy=%q downtime=%v (chains stayed on nimbus)\n",
		last.Strategy, last.Downtime.Round(10*time.Microsecond))
	rtt("  cloud-hosted, after roam")

	// Recall: chains return to the client's current edge station.
	fmt.Println("\nrecalling phone to the edge ...")
	must(sys.RecallClient("phone"))
	fmt.Printf("chains now on st-b: %v\n", sys.Agent("st-b").Chains())
	rtt("  edge-hosted again")

	// The accounting NF kept its state across every move.
	chainFn, err := sys.Agent("st-b").ChainFunction("edge-chain")
	must(err)
	fmt.Printf("\naccounting survived edge->cloud->edge: total_frames=%d\n",
		chainFn.NFStats()["acct.total_frames"])
}
