// Failover: the Manager's health monitoring (§3) closing the loop. Three
// stations serve a client whose chain runs at its station; the station
// then crashes (its agent connection drops). With failover armed, the
// Manager detects the loss, re-places the chain on a survivor and records
// the recovery. The station later rejoins.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	sys, err := core.NewSystem(core.Config{
		Strategy:       manager.StrategyStateful,
		ReportInterval: 100 * time.Millisecond,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []core.CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
			{ID: "st-c", Cells: []core.CellConfig{{ID: "cell-c", Center: topology.Point{X: 200}, Radius: 60}}},
		},
	})
	must(err)
	defer sys.Close()

	// Arm automatic failover: dropped connections recover immediately;
	// silent stations after 500 ms of missed heartbeats.
	sys.Manager.EnableFailover(500 * time.Millisecond)
	sys.Manager.SetPlacement(manager.LeastLoadedPlacement{})

	must(sys.AddClient("phone", packet.MAC{2, 0, 0, 0, 0, 0x10}, packet.IP{10, 0, 0, 10}))
	must(sys.Topo.Attach("phone", "cell-a"))
	must(sys.WaitClientAt("phone", "st-a", 5*time.Second))

	must(sys.AttachChain("phone", manager.ChainSpec{
		Name:      "fw-chain",
		Functions: []agent.NFSpec{{Kind: "firewall", Name: "fw", Params: nf.Params{"policy": "accept"}}},
	}))
	must(sys.WaitChainOn("st-a", "fw-chain", 5*time.Second))
	fmt.Println("chain deployed on st-a; stations:", sys.Manager.Agents())

	// st-a dies.
	fmt.Println("\nkilling st-a ...")
	start := time.Now()
	must(sys.KillStation("st-a"))
	deadline := time.Now().Add(10 * time.Second)
	for len(sys.Manager.Failovers()) == 0 {
		if time.Now().After(deadline) {
			log.Fatal("no failover detected")
		}
		time.Sleep(time.Millisecond)
	}
	sys.Manager.WaitIdle()
	elapsed := time.Since(start)

	for _, rep := range sys.Manager.Failovers() {
		if rep.Err != "" {
			log.Fatalf("failover failed: %+v", rep)
		}
		fmt.Printf("recovered %s/%s: %s -> %s in %v (wall %v)\n",
			rep.Client, rep.Chain, rep.Station, rep.To,
			rep.Recovered.Round(time.Millisecond), elapsed.Round(time.Millisecond))
		if err := sys.WaitChainOn(topology.StationID(rep.To), rep.Chain, 5*time.Second); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("failed stations:", sys.Manager.FailedStations())
	fmt.Println("surviving agents:", sys.Manager.Agents())

	// The station comes back and is usable again.
	fmt.Println("\nrestarting st-a ...")
	must(sys.RestartStation("st-a"))
	deadline = time.Now().Add(10 * time.Second)
	for len(sys.Manager.Agents()) != 3 {
		if time.Now().After(deadline) {
			log.Fatal("st-a never rejoined")
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("st-a rejoined; failed stations:", sys.Manager.FailedStations())
}
