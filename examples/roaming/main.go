// Roaming: the paper's §4 mobility use-case as a library example. A phone
// with a stateful accounting chain roams between two cells while streaming
// CBR traffic; the example reports migration downtime and packet loss, and
// shows the NF's flow counters surviving the move.
//
//	go run ./examples/roaming
package main

import (
	"fmt"
	"log"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/traffic"
)

func main() {
	sys, err := core.NewSystem(core.Config{
		Strategy: manager.StrategyStateful,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
			{ID: "st-b", Cells: []core.CellConfig{{ID: "cell-b", Center: topology.Point{X: 100}, Radius: 60}}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	phoneMAC := packet.MAC{2, 0, 0, 0, 0, 0x10}
	phoneIP := packet.IP{10, 0, 0, 10}
	serverMAC := packet.MAC{2, 0, 0, 0, 0, 0x99}
	serverIP := packet.IP{10, 99, 0, 1}

	if err := sys.AddClient("phone", phoneMAC, phoneIP); err != nil {
		log.Fatal(err)
	}
	server := sys.AddServer("web", serverMAC, serverIP)
	server.Learn(phoneIP, phoneMAC)
	sink := traffic.NewSink(server, 7000, sys.Clock)

	if err := sys.Topo.Attach("phone", "cell-a"); err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-a", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	sys.ClientHost("phone").Learn(serverIP, serverMAC)

	// A stateful chain: per-flow accounting that must survive the roam.
	err = sys.AttachChain("phone", manager.ChainSpec{
		Name:      "acct-chain",
		Functions: []agent.NFSpec{{Kind: "counter", Name: "acct", Params: nf.Params{}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitChainOn("st-a", "acct-chain", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("phone attached to cell-a with accounting chain")

	// Stream CBR at 200 pps while roaming mid-stream.
	const total, pps = 600, 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		traffic.CBR(sys.ClientHost("phone"), packet.Endpoint{Addr: serverIP, Port: 7000}, 6000, total, 128, pps)
	}()

	time.Sleep(time.Duration(total/pps) * time.Second / 2) // roam halfway
	fmt.Println("roaming phone -> cell-b ...")
	if err := sys.Topo.Attach("phone", "cell-b"); err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitClientAt("phone", "st-b", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	if err := sys.WaitChainOn("st-b", "acct-chain", 5*time.Second); err != nil {
		log.Fatal(err)
	}
	sys.ClientHost("phone").Learn(serverIP, serverMAC)
	<-done
	time.Sleep(200 * time.Millisecond) // drain in-flight frames

	rep := sink.Analyze(total)
	migs := sys.Manager.Migrations()
	fmt.Printf("\ntraffic:   sent=%d received=%d lost=%d (longest gap %d pkts, ~%v)\n",
		rep.Sent, rep.Received, rep.Lost, rep.LongestGap, rep.GapDuration)
	for _, m := range migs {
		fmt.Printf("migration: %s -> %s strategy=%s downtime=%v state=%dB\n",
			m.From, m.To, m.Strategy, m.Downtime, m.StateBytes)
	}
	chainFn, err := sys.Agent("st-b").ChainFunction("acct-chain")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counters:  total_frames=%d (includes pre-roam history — state followed the client)\n",
		chainFn.NFStats()["acct.total_frames"])
}
