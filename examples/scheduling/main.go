// Scheduling: §3's operational features — time-windowed NFs ("scheduled
// to be enabled only during specific time periods") and the monitoring
// plane (station health, hotspot detection, UI snapshot). A parental
// HTTP filter is scheduled for a nightly window; the example drives the
// scheduler and shows the filter flipping on and off, then prints the
// Manager's view of the deployment.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"
	"time"

	"gnf/internal/agent"
	"gnf/internal/core"
	"gnf/internal/manager"
	"gnf/internal/nf"
	"gnf/internal/packet"
	"gnf/internal/topology"
	"gnf/internal/traffic"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	sys, err := core.NewSystem(core.Config{
		Strategy:       manager.StrategyStateful,
		ReportInterval: 100 * time.Millisecond,
		Stations: []core.StationConfig{
			{ID: "st-a", Cells: []core.CellConfig{{ID: "cell-a", Center: topology.Point{X: 0}, Radius: 60}}},
		},
	})
	must(err)
	defer sys.Close()

	phoneMAC := packet.MAC{2, 0, 0, 0, 0, 0x10}
	phoneIP := packet.IP{10, 0, 0, 10}
	serverMAC := packet.MAC{2, 0, 0, 0, 0, 0x99}
	serverIP := packet.IP{10, 99, 0, 1}

	must(sys.AddClient("phone", phoneMAC, phoneIP))
	server := sys.AddServer("web", serverMAC, serverIP)
	server.Learn(phoneIP, phoneMAC)
	must(sys.Topo.Attach("phone", "cell-a"))
	must(sys.WaitClientAt("phone", "st-a", 5*time.Second))
	phone := sys.ClientHost("phone")
	phone.Learn(serverIP, serverMAC)

	// An HTTP filter blocking a distracting site, attached permanently
	// but scheduled: enabled only inside a "study hours" window.
	must(sys.AttachChain("phone", manager.ChainSpec{
		Name: "study-filter",
		Functions: []agent.NFSpec{{
			Kind: "httpfilter", Name: "filter",
			Params: nf.Params{"block_hosts": "games.example"},
		}},
	}))
	must(sys.WaitChainOn("st-a", "study-filter", 5*time.Second))

	now := time.Now()
	window := manager.Window{EnableAt: now.Add(300 * time.Millisecond), DisableAt: now.Add(900 * time.Millisecond)}
	must(sys.Manager.Schedule("phone", "study-filter", window))
	fmt.Printf("filter scheduled: on at +300ms, off at +900ms (%d schedule(s) registered)\n",
		len(sys.Manager.Schedules()))

	// Drive the scheduler on a fast tick, as the manager daemon does.
	stop := make(chan struct{})
	go sys.Manager.RunScheduler(20*time.Millisecond, stop)
	defer close(stop)

	// probe sends one request to the blocked site and reports the verdict.
	probe := func(label string) {
		fn, err := sys.Agent("st-a").ChainFunction("study-filter")
		must(err)
		before := fn.NFStats()["filter.blocked"]
		frame := traffic.HTTPRequestFrame(phoneMAC, serverMAC, phoneIP, serverIP, 42000, "games.example", "/play")
		must(phone.Endpoint().Send(frame))
		time.Sleep(50 * time.Millisecond)
		after := fn.NFStats()["filter.blocked"]
		verdict := "passed (filter disabled: chain drops nothing, forwards nothing through the filter)"
		if after > before {
			verdict = "BLOCKED by the filter"
		}
		fmt.Printf("%-22s request to games.example: %s\n", label, verdict)
	}

	// Before the window: the chain is deployed but the scheduler has
	// disabled it — traffic is held (the paper's schedule semantics:
	// the NF only serves inside its window).
	time.Sleep(100 * time.Millisecond)
	fmt.Println("\nbefore window:")
	probe("  t=+100ms")

	time.Sleep(400 * time.Millisecond) // inside [300, 900)
	fmt.Println("inside window:")
	probe("  t=+500ms")

	time.Sleep(600 * time.Millisecond) // past 900ms
	fmt.Println("after window:")
	probe("  t=+1100ms")

	// The monitoring plane (§3): what the UI reads from the Manager.
	fmt.Println("\nmanager's view of the deployment:")
	for _, info := range sys.Manager.StationInfos() {
		fmt.Printf("  station %-6s cloud=%-5v cpu=%5.1f%%  mem=%d B  chains=%d\n",
			info.Station, info.Cloud, info.CPUPercent, info.MemUsed, info.Chains)
	}
	fmt.Printf("  hotspots (cpu>80%%): %v\n", sys.Manager.Hotspots())
	fmt.Printf("  notifications relayed: %d\n", len(sys.Manager.Notifications()))
}
