// Density: reproduce the paper's "hundreds of NFs on commodity devices"
// claim (§2). A 1 GiB edge box is packed with container NFs until memory
// runs out, then the same box is packed with VM-based NFs — the density gap
// is the paper's core argument for container-based NFV.
//
//	go run ./examples/density
package main

import (
	"fmt"
	"log"

	"gnf/internal/baseline"
	"gnf/internal/clock"
	"gnf/internal/container"
)

func main() {
	const hostMem = 1 << 30 // 1 GiB edge device
	clk := clock.NewAutoVirtual()

	repo := container.NewRepository(clk, 0, 0)
	img := container.Image{Name: "gnf/firewall:1.0", SizeBytes: 4 << 20, MemoryBytes: 6 << 20, CPUPercent: 2}
	repo.Push(img)

	pack := func(rt *container.Runtime, image string) (n int) {
		for {
			c, err := rt.Create(container.Config{Image: image})
			if err != nil {
				return n
			}
			if err := c.Start(); err != nil {
				return n
			}
			n++
		}
	}

	ctrRT := container.NewRuntime("edge", clk, repo, container.WithCapacity(hostMem))
	ctrN := pack(ctrRT, img.Name)

	vmRepo := baseline.NewVMRepository(clk, repo, 0, 0)
	vmRT := baseline.NewVMRuntime("edge", clk, vmRepo, container.WithCapacity(hostMem))
	vmN := pack(vmRT, "vm/"+img.Name)

	fmt.Printf("edge device: %d MiB memory\n", hostMem>>20)
	fmt.Printf("  container NFs packed: %4d  (%.1f MiB each)\n", ctrN, float64(img.MemoryBytes)/(1<<20))
	vmImg, _ := vmRepo.Lookup("vm/" + img.Name)
	fmt.Printf("  VM NFs packed:        %4d  (%.1f MiB each)\n", vmN, float64(vmImg.MemoryBytes)/(1<<20))
	if vmN == 0 {
		vmN = 1
	}
	fmt.Printf("  density advantage:    %dx\n", ctrN/vmN)
	if ctrN < 100 {
		log.Fatalf("expected hundreds of container NFs, got %d", ctrN)
	}

	// Instantiation-latency comparison on the same box (simulated time).
	measure := func(rt *container.Runtime, image, name string) {
		start := clk.Now()
		c, err := rt.Create(container.Config{Name: name, Image: image})
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Start(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s attach latency: %v\n", name, clk.Since(start))
	}
	fmt.Println("\nattach latency (warm image cache):")
	ctrRT2 := container.NewRuntime("edge2", clk, repo)
	ctrRT2.PrefetchImage(img.Name)
	measure(ctrRT2, img.Name, "container")
	vmRT2 := baseline.NewVMRuntime("edge2", clk, vmRepo)
	vmRT2.PrefetchImage("vm/" + img.Name)
	measure(vmRT2, "vm/"+img.Name, "vm")
}
